// Windowed telemetry: the in-process time-series engine behind
// Config.TimeSeries (DESIGN.md §15). Every other signal the system emits is
// cumulative-since-start; this file adds the time axis. A single sampler
// goroutine (core's tsLoop) periodically snapshots the cumulative counters
// and latency histograms into a TSSample and Pushes it here; Push
// delta-encodes the sample against the previous one into a bounded,
// preallocated ring of windows — no allocation on the sampling path — and
// evaluates the declared SLOs with multi-window burn rates (fast/slow window
// pairs, the SRE error-budget alerting rule). Report() derives windowed
// rates, moving quantiles, sparkline-ready recent windows, and the SLO/alert
// state; WriteOpenMetrics renders the same as stm_rate{metric,window} (and
// friends) gauges.
//
// Concurrency: one writer (the sampler) and any number of concurrent
// readers, all serialized by one mutex. The engine is deliberately off the
// transaction hot path — there are no per-transaction record sites at all;
// the sampler reads counters the other observability knobs already maintain
// — so a mutex at sampling frequency (default 1 Hz) is free.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/internal/histo"
)

// TSCounter indexes one windowed counter metric in a TSSample.
type TSCounter uint8

const (
	// TSCommits: committed transactions.
	TSCommits TSCounter = iota
	// TSAborts: conflict aborts.
	TSAborts
	// TSAbortInvalidated .. TSAbortExplicit: the abort-reason taxonomy.
	TSAbortInvalidated
	TSAbortValidation
	TSAbortSelf
	TSAbortLocked
	TSAbortExplicit
	// TSReadOnly: committed transactions that wrote nothing.
	TSReadOnly
	// TSROCommits / TSROFallbacks: multi-version snapshot reads (Versions > 0).
	TSROCommits
	TSROFallbacks
	// TSReads / TSWrites: transactional loads/stores (all attempts).
	TSReads
	TSWrites
	// TSEpochs: commit-server timestamp transitions (group-commit epochs).
	TSEpochs
	// TSCrossShard: commits retired through the two-phase shard handshake.
	TSCrossShard
	// TSBloomFPSampled / TSBloomFPFalse: sampled exact-intersection bloom
	// false-positive checks and how many were false positives (Attribution).
	TSBloomFPSampled
	TSBloomFPFalse
	// TSWastedNs: wasted-work nanoseconds across abort reasons (Attribution).
	TSWastedNs

	// NumTSCounters bounds the enum, for the sample/window arrays.
	NumTSCounters
)

// String returns the stable metric label used in reports and /metrics.
func (c TSCounter) String() string {
	switch c {
	case TSCommits:
		return "commits"
	case TSAborts:
		return "aborts"
	case TSAbortInvalidated:
		return "aborts_invalidated"
	case TSAbortValidation:
		return "aborts_validation"
	case TSAbortSelf:
		return "aborts_self"
	case TSAbortLocked:
		return "aborts_locked"
	case TSAbortExplicit:
		return "aborts_explicit"
	case TSReadOnly:
		return "readonly"
	case TSROCommits:
		return "ro_commits"
	case TSROFallbacks:
		return "ro_fallbacks"
	case TSReads:
		return "reads"
	case TSWrites:
		return "writes"
	case TSEpochs:
		return "epochs"
	case TSCrossShard:
		return "cross_shard_commits"
	case TSBloomFPSampled:
		return "bloom_fp_checks"
	case TSBloomFPFalse:
		return "bloom_fp"
	case TSWastedNs:
		return "wasted_ns"
	default:
		return fmt.Sprintf("TSCounter(%d)", int(c))
	}
}

// TSPhases lists the client latency phases the engine windows, in sample
// order; NumTSPhases sizes the per-window histogram arrays.
var TSPhases = [...]LatPhase{LatApp, LatRetry, LatCommitWait, LatTotal}

// NumTSPhases is len(TSPhases) as an array bound.
const NumTSPhases = 4

// tsPhaseIndex maps a phase name to its TSPhases index, or -1.
func tsPhaseIndex(name string) int {
	for i, p := range TSPhases {
		if p.String() == name {
			return i
		}
	}
	return -1
}

// TSSample is one cumulative observation: counter totals and client-phase
// latency histograms as of UnixNanos. The engine delta-encodes consecutive
// samples; callers hand it cumulative values, never deltas.
type TSSample struct {
	UnixNanos int64
	Counters  [NumTSCounters]uint64
	Phases    [NumTSPhases]histo.Histogram
}

// tsWindow is one delta-encoded ring entry: what happened between two
// consecutive samples.
type tsWindow struct {
	unixNanos int64 // window end
	durNs     int64
	counters  [NumTSCounters]uint64
	phases    [NumTSPhases]histo.Histogram
}

// SLOKind selects what an SLO constrains.
type SLOKind uint8

const (
	// SLOAbortRate bounds the windowed abort rate aborts/(commits+aborts);
	// the objective is MaxRate and the burn rate is observed/MaxRate.
	SLOAbortRate SLOKind = iota
	// SLOLatencyP99 bounds a client phase's p99: "99% of sampled
	// transactions complete the phase within MaxNs". The error budget is
	// the 1% tail; the burn rate is the fraction of windowed samples whose
	// histogram bucket lies above MaxNs, divided by that 1% budget.
	SLOLatencyP99
)

// String returns the stable kind name.
func (k SLOKind) String() string {
	switch k {
	case SLOAbortRate:
		return "abort-rate"
	case SLOLatencyP99:
		return "latency-p99"
	default:
		return fmt.Sprintf("SLOKind(%d)", int(k))
	}
}

// Default burn-rate window pair and threshold (the SRE multi-window rule:
// alert only when both a fast and a slow window burn the budget, so a blip
// doesn't page and a slow bleed still does).
const (
	DefaultSLOFast = 5 * time.Second
	DefaultSLOSlow = 60 * time.Second
	DefaultSLOBurn = 2.0
)

// sloMinSamples is the minimum windowed latency-sample count before a
// latency SLO's burn is considered meaningful (mirrors the flight
// recorder's flightMinSamples discipline).
const sloMinSamples = 8

// latencyErrBudget is the error budget implied by a p99 objective: 1% of
// requests may exceed it.
const latencyErrBudget = 0.01

// SLO declares one service-level objective evaluated by the time-series
// engine. Zero-valued knobs are defaulted by Normalize (which core's config
// validation calls): Fast/Slow fall back to the 5s/60s pair, Burn to 2.
type SLO struct {
	// Name labels the objective in reports, metrics, and flight-dump
	// reasons. Defaults to the kind name (plus the phase for latency SLOs).
	Name string `json:"name"`
	// Kind selects the constrained signal.
	Kind SLOKind `json:"kind"`
	// MaxRate is the SLOAbortRate objective, a fraction in (0,1].
	MaxRate float64 `json:"max_rate,omitempty"`
	// MaxNs is the SLOLatencyP99 objective in nanoseconds.
	MaxNs uint64 `json:"max_ns,omitempty"`
	// Phase selects the client phase a latency SLO constrains: "app",
	// "retry", "commit-wait", or "total" (the default).
	Phase string `json:"phase,omitempty"`
	// Fast and Slow are the burn-rate window pair; an alert fires only when
	// both windows' burns reach Burn. Each window is rounded up to whole
	// sampling intervals and only evaluates once the ring holds its full
	// span (so startup transients cannot alert).
	Fast time.Duration `json:"fast,omitempty"`
	Slow time.Duration `json:"slow,omitempty"`
	// Burn is the burn-rate threshold (multiples of the error budget).
	Burn float64 `json:"burn,omitempty"`
}

// Normalize fills defaults and validates the objective against the engine's
// sampling interval and ring capacity.
func (o SLO) Normalize(interval time.Duration, capacity int) (SLO, error) {
	switch o.Kind {
	case SLOAbortRate:
		if o.MaxRate <= 0 || o.MaxRate > 1 {
			return o, fmt.Errorf("obs: abort-rate SLO needs MaxRate in (0,1], got %v", o.MaxRate)
		}
		if o.Name == "" {
			o.Name = o.Kind.String()
		}
	case SLOLatencyP99:
		if o.MaxNs == 0 {
			return o, fmt.Errorf("obs: latency SLO needs MaxNs > 0")
		}
		if o.Phase == "" {
			o.Phase = LatTotal.String()
		}
		if tsPhaseIndex(o.Phase) < 0 {
			return o, fmt.Errorf("obs: latency SLO phase %q is not a client phase", o.Phase)
		}
		if o.Name == "" {
			o.Name = o.Kind.String() + "-" + o.Phase
		}
	default:
		return o, fmt.Errorf("obs: unknown SLO kind %d", o.Kind)
	}
	if o.Fast == 0 {
		o.Fast = DefaultSLOFast
	}
	if o.Slow == 0 {
		o.Slow = DefaultSLOSlow
	}
	if o.Burn == 0 {
		o.Burn = DefaultSLOBurn
	}
	if o.Burn < 1 {
		return o, fmt.Errorf("obs: SLO burn threshold %v below 1", o.Burn)
	}
	if o.Fast < interval {
		return o, fmt.Errorf("obs: SLO fast window %v below the sampling interval %v", o.Fast, interval)
	}
	if o.Fast >= o.Slow {
		return o, fmt.Errorf("obs: SLO fast window %v not below slow window %v", o.Fast, o.Slow)
	}
	if k := windowsFor(o.Slow, interval); k > capacity {
		return o, fmt.Errorf("obs: SLO slow window %v needs %d windows, ring holds %d", o.Slow, k, capacity)
	}
	return o, nil
}

// Objective renders the target as a human-readable string for reports.
func (o SLO) Objective() string {
	if o.Kind == SLOAbortRate {
		return fmt.Sprintf("abort-rate<=%.3g", o.MaxRate)
	}
	return fmt.Sprintf("p99(%s)<=%v", o.Phase, time.Duration(o.MaxNs))
}

// windowsFor converts a span into whole sampling windows, rounding up.
func windowsFor(span, interval time.Duration) int {
	k := int((span + interval - 1) / interval)
	if k < 1 {
		k = 1
	}
	return k
}

// sloState is one objective's between-push memory.
type sloState struct {
	cfg      SLO
	phase    int // TSPhases index for latency SLOs
	fastK    int // window counts of the burn pair
	slowK    int
	fastBurn float64
	slowBurn float64
	firing   bool
	alerts   uint64
}

// SLOAlert records one rising edge of an objective's firing state, with the
// window that tripped it — what the flight bundle carries so "which window
// was bad" survives the incident.
type SLOAlert struct {
	SLO       string         `json:"slo"`
	UnixNanos int64          `json:"unix_nanos"`
	Seq       uint64         `json:"seq"` // the tripping window's sequence number
	FastBurn  float64        `json:"fast_burn"`
	SlowBurn  float64        `json:"slow_burn"`
	Burn      float64        `json:"burn_threshold"`
	Window    TSWindowReport `json:"window"`
}

// maxAlerts bounds the retained alert log; older alerts age out (the total
// count keeps climbing in AlertsTotal).
const maxAlerts = 64

// TimeSeries is the windowed telemetry engine: a bounded ring of
// delta-encoded windows plus the SLO evaluation state. All methods are
// nil-receiver-safe so core can hold a nil *TimeSeries when the knob is off.
type TimeSeries struct {
	mu       sync.Mutex
	interval time.Duration
	ring     []tsWindow
	head     int // next write index
	n        int // filled entries
	seq      uint64
	prev     TSSample
	havePrev bool
	slos     []sloState
	alerts   []SLOAlert
	alertN   uint64
}

// NewTimeSeries builds an engine retaining capacity windows of length
// interval, evaluating slos (already Normalized) on every push. The ring is
// allocated up front — at the default 600 windows it holds ~1.4 MiB — so
// Push never allocates.
func NewTimeSeries(capacity int, interval time.Duration, slos []SLO) *TimeSeries {
	ts := &TimeSeries{
		interval: interval,
		ring:     make([]tsWindow, capacity),
		slos:     make([]sloState, len(slos)),
		alerts:   make([]SLOAlert, 0, maxAlerts),
	}
	for i, o := range slos {
		ts.slos[i] = sloState{
			cfg:   o,
			phase: tsPhaseIndex(o.Phase),
			fastK: windowsFor(o.Fast, interval),
			slowK: windowsFor(o.Slow, interval),
		}
	}
	return ts
}

// Enabled reports whether the engine is collecting. Nil-safe.
//
//stm:hotpath
func (ts *TimeSeries) Enabled() bool { return ts != nil }

// Interval returns the window length (0 on a nil engine).
//
//stm:hotpath
func (ts *TimeSeries) Interval() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.interval
}

// window returns the ring entry age windows back (0 = newest). Caller holds
// mu and guarantees age < n.
func (ts *TimeSeries) window(age int) *tsWindow {
	return &ts.ring[(ts.head-1-age+len(ts.ring))%len(ts.ring)]
}

// Push feeds one cumulative sample. The first push only establishes the
// delta baseline; each later push appends one window and re-evaluates the
// SLOs. Single sampler goroutine; no allocation (alert rising edges aside,
// which append into a preallocated bounded log).
func (ts *TimeSeries) Push(s TSSample) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if !ts.havePrev {
		ts.prev, ts.havePrev = s, true
		return
	}
	w := &ts.ring[ts.head]
	w.unixNanos = s.UnixNanos
	w.durNs = s.UnixNanos - ts.prev.UnixNanos
	if w.durNs <= 0 {
		w.durNs = int64(ts.interval)
	}
	for i := range w.counters {
		// Clamp regressions to zero: counters are monotone, but the sampler
		// reads them one atomic load at a time, so a snapshot is not a
		// single instant.
		if d := s.Counters[i] - ts.prev.Counters[i]; s.Counters[i] >= ts.prev.Counters[i] {
			w.counters[i] = d
		} else {
			w.counters[i] = 0
		}
	}
	for i := range w.phases {
		w.phases[i] = histo.Delta(&s.Phases[i], &ts.prev.Phases[i])
	}
	ts.prev = s
	ts.head = (ts.head + 1) % len(ts.ring)
	if ts.n < len(ts.ring) {
		ts.n++
	}
	ts.seq++
	ts.evalSLOs(w)
}

// sumCounter folds counter c over the newest k windows. Caller holds mu.
func (ts *TimeSeries) sumCounter(c TSCounter, k int) uint64 {
	var n uint64
	for age := 0; age < k; age++ {
		n += ts.window(age).counters[c]
	}
	return n
}

// mergePhaseWindows folds phase index p over the newest k windows into dst.
// Caller holds mu.
func (ts *TimeSeries) mergePhaseWindows(dst *histo.Histogram, p, k int) {
	for age := 0; age < k; age++ {
		dst.Merge(&ts.window(age).phases[p])
	}
}

// burnOver computes one objective's burn rate over the newest k windows.
// Returns 0 before the ring holds the full span (no startup alerts) or when
// the span carries no signal. Caller holds mu.
func (ts *TimeSeries) burnOver(st *sloState, k int) float64 {
	if ts.n < k {
		return 0
	}
	if st.cfg.Kind == SLOAbortRate {
		commits := ts.sumCounter(TSCommits, k)
		aborts := ts.sumCounter(TSAborts, k)
		if commits+aborts == 0 {
			return 0
		}
		rate := float64(aborts) / float64(commits+aborts)
		return rate / st.cfg.MaxRate
	}
	var h histo.Histogram
	ts.mergePhaseWindows(&h, st.phase, k)
	if h.Count() < sloMinSamples {
		return 0
	}
	frac := float64(h.CountAbove(st.cfg.MaxNs)) / float64(h.Count())
	return frac / latencyErrBudget
}

// evalSLOs re-evaluates every objective against the just-pushed window w and
// records rising edges into the alert log. Caller holds mu.
func (ts *TimeSeries) evalSLOs(w *tsWindow) {
	for i := range ts.slos {
		st := &ts.slos[i]
		st.fastBurn = ts.burnOver(st, st.fastK)
		st.slowBurn = ts.burnOver(st, st.slowK)
		firing := st.fastBurn >= st.cfg.Burn && st.slowBurn >= st.cfg.Burn
		if firing && !st.firing {
			st.alerts++
			ts.alertN++
			if len(ts.alerts) == maxAlerts {
				copy(ts.alerts, ts.alerts[1:])
				ts.alerts = ts.alerts[:maxAlerts-1]
			}
			ts.alerts = append(ts.alerts, SLOAlert{
				SLO:       st.cfg.Name,
				UnixNanos: w.unixNanos,
				Seq:       ts.seq,
				FastBurn:  st.fastBurn,
				SlowBurn:  st.slowBurn,
				Burn:      st.cfg.Burn,
				Window:    windowReport(w),
			})
		}
		st.firing = firing
	}
}

// AlertCount returns the total number of alerts ever recorded. Nil-safe;
// the flight recorder polls it as its SLO trigger watermark.
func (ts *TimeSeries) AlertCount() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.alertN
}

// LastAlert returns the most recent alert, if any. Nil-safe.
func (ts *TimeSeries) LastAlert() (SLOAlert, bool) {
	if ts == nil {
		return SLOAlert{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.alerts) == 0 {
		return SLOAlert{}, false
	}
	return ts.alerts[len(ts.alerts)-1], true
}

// TSWindowReport is one window's exported form: the non-zero counter deltas
// plus the derived signals a trend panel needs.
type TSWindowReport struct {
	UnixNanos  int64             `json:"unix_nanos"`
	DurNs      int64             `json:"dur_ns"`
	Counters   map[string]uint64 `json:"counters,omitempty"` // zero deltas elided
	AbortRate  float64           `json:"abort_rate"`
	P50TotalNs uint64            `json:"p50_total_ns"`
	P99TotalNs uint64            `json:"p99_total_ns"`
}

// windowReport builds one window's exported form.
func windowReport(w *tsWindow) TSWindowReport {
	rep := TSWindowReport{UnixNanos: w.unixNanos, DurNs: w.durNs}
	rep.Counters = make(map[string]uint64, NumTSCounters)
	for c := TSCounter(0); c < NumTSCounters; c++ {
		if n := w.counters[c]; n != 0 {
			rep.Counters[c.String()] = n
		}
	}
	total := w.counters[TSCommits] + w.counters[TSAborts]
	if total > 0 {
		rep.AbortRate = float64(w.counters[TSAborts]) / float64(total)
	}
	t := &w.phases[NumTSPhases-1] // TSPhases ends with LatTotal
	rep.P50TotalNs = t.Quantile(0.5)
	rep.P99TotalNs = t.Quantile(0.99)
	return rep
}

// TSRate is one counter's rate over one span.
type TSRate struct {
	Metric string  `json:"metric"`
	Window string  `json:"window"`
	Delta  uint64  `json:"delta"`
	PerSec float64 `json:"per_sec"`
}

// TSQuantile is one client phase's moving quantiles over one span.
type TSQuantile struct {
	Phase  string `json:"phase"`
	Window string `json:"window"`
	Count  uint64 `json:"count"`
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
}

// SLOStatus is one objective's current evaluation state.
type SLOStatus struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Objective string  `json:"objective"`
	Fast      string  `json:"fast"`
	Slow      string  `json:"slow"`
	Burn      float64 `json:"burn_threshold"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	Firing    bool    `json:"firing"`
	Alerts    uint64  `json:"alerts"`
}

// TimeSeriesReport is the exported point-in-time view of the engine:
// windowed rates and quantiles over the standard spans, the newest windows
// for sparklines, and the SLO/alert state.
type TimeSeriesReport struct {
	Enabled     bool             `json:"enabled"`
	IntervalNs  int64            `json:"interval_ns"`
	Capacity    int              `json:"capacity"`
	Windows     int              `json:"windows"`
	Seq         uint64           `json:"seq"`
	Rates       []TSRate         `json:"rates,omitempty"`
	Quantiles   []TSQuantile     `json:"quantiles,omitempty"`
	Recent      []TSWindowReport `json:"recent,omitempty"` // oldest first
	SLOs        []SLOStatus      `json:"slos,omitempty"`
	Alerts      []SLOAlert       `json:"alerts,omitempty"`
	AlertsTotal uint64           `json:"alerts_total"`
}

// maxRecent caps the sparkline window list a report carries.
const maxRecent = 60

// reportSpans returns the deduplicated, ascending list of spans a report
// evaluates: one window, the default fast/slow pair, and every SLO's pair.
func (ts *TimeSeries) reportSpans() []time.Duration {
	spans := []time.Duration{ts.interval, DefaultSLOFast, DefaultSLOSlow}
	for i := range ts.slos {
		spans = append(spans, ts.slos[i].cfg.Fast, ts.slos[i].cfg.Slow)
	}
	seen := map[int]bool{}
	out := spans[:0]
	for _, sp := range spans {
		k := windowsFor(sp, ts.interval)
		if k > ts.n {
			k = ts.n // clamp to available history
		}
		if k < 1 || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, time.Duration(k)*ts.interval)
	}
	return out
}

// Report builds the exported view. Nil-safe: a nil engine reports
// Enabled=false. Allocates freely — it is a cold endpoint path.
func (ts *TimeSeries) Report() TimeSeriesReport {
	if ts == nil {
		return TimeSeriesReport{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rep := TimeSeriesReport{
		Enabled:     true,
		IntervalNs:  int64(ts.interval),
		Capacity:    len(ts.ring),
		Windows:     ts.n,
		Seq:         ts.seq,
		AlertsTotal: ts.alertN,
	}
	for _, span := range ts.reportSpans() {
		k := windowsFor(span, ts.interval)
		label := span.String()
		var durNs int64
		for age := 0; age < k; age++ {
			durNs += ts.window(age).durNs
		}
		secs := float64(durNs) / 1e9
		for c := TSCounter(0); c < NumTSCounters; c++ {
			d := ts.sumCounter(c, k)
			r := TSRate{Metric: c.String(), Window: label, Delta: d}
			if secs > 0 {
				r.PerSec = float64(d) / secs
			}
			rep.Rates = append(rep.Rates, r)
		}
		for p := range TSPhases {
			var h histo.Histogram
			ts.mergePhaseWindows(&h, p, k)
			rep.Quantiles = append(rep.Quantiles, TSQuantile{
				Phase:  TSPhases[p].String(),
				Window: label,
				Count:  h.Count(),
				P50Ns:  h.Quantile(0.5),
				P99Ns:  h.Quantile(0.99),
			})
		}
	}
	recent := ts.n
	if recent > maxRecent {
		recent = maxRecent
	}
	for age := recent - 1; age >= 0; age-- {
		rep.Recent = append(rep.Recent, windowReport(ts.window(age)))
	}
	for i := range ts.slos {
		st := &ts.slos[i]
		rep.SLOs = append(rep.SLOs, SLOStatus{
			Name:      st.cfg.Name,
			Kind:      st.cfg.Kind.String(),
			Objective: st.cfg.Objective(),
			Fast:      (time.Duration(st.fastK) * ts.interval).String(),
			Slow:      (time.Duration(st.slowK) * ts.interval).String(),
			Burn:      st.cfg.Burn,
			FastBurn:  st.fastBurn,
			SlowBurn:  st.slowBurn,
			Firing:    st.firing,
			Alerts:    st.alerts,
		})
	}
	rep.Alerts = append(rep.Alerts, ts.alerts...)
	return rep
}

// WriteOpenMetrics renders the report as gauge families: windowed rates per
// metric and span, moving quantiles per phase and span, and the SLO burn
// state. Cumulative counters already have their own families; these are the
// time-axis view.
func (r *TimeSeriesReport) WriteOpenMetrics(w io.Writer) {
	family(w, "stm_timeseries_enabled", "gauge", "Whether the windowed telemetry engine is collecting.")
	fmt.Fprintf(w, "stm_timeseries_enabled %d\n", b2i(r.Enabled))
	if !r.Enabled {
		return
	}
	family(w, "stm_timeseries_windows", "gauge", "Delta-encoded windows currently retained in the ring.")
	fmt.Fprintf(w, "stm_timeseries_windows %d\n", r.Windows)
	family(w, "stm_rate", "gauge", "Windowed event rate per second, by metric and trailing window.")
	for _, rt := range r.Rates {
		fmt.Fprintf(w, "stm_rate{metric=%q,window=%q} %g\n", rt.Metric, rt.Window, rt.PerSec)
	}
	family(w, "stm_window_quantile_ns", "gauge", "Moving client-phase latency quantiles over the trailing window, in nanoseconds.")
	for _, q := range r.Quantiles {
		fmt.Fprintf(w, "stm_window_quantile_ns{phase=%q,q=\"0.5\",window=%q} %d\n", q.Phase, q.Window, q.P50Ns)
		fmt.Fprintf(w, "stm_window_quantile_ns{phase=%q,q=\"0.99\",window=%q} %d\n", q.Phase, q.Window, q.P99Ns)
	}
	if len(r.SLOs) == 0 {
		return
	}
	family(w, "stm_slo_burn", "gauge", "SLO error-budget burn rate over the fast and slow windows (1 = burning exactly the budget).")
	for _, s := range r.SLOs {
		fmt.Fprintf(w, "stm_slo_burn{slo=%q,window=\"fast\"} %g\n", s.Name, s.FastBurn)
		fmt.Fprintf(w, "stm_slo_burn{slo=%q,window=\"slow\"} %g\n", s.Name, s.SlowBurn)
	}
	family(w, "stm_slo_firing", "gauge", "Whether the SLO's fast and slow burns both exceed its threshold.")
	for _, s := range r.SLOs {
		fmt.Fprintf(w, "stm_slo_firing{slo=%q} %d\n", s.Name, b2i(s.Firing))
	}
	family(w, "stm_slo_alerts", "counter", "Rising edges of the SLO's firing state since start.")
	for _, s := range r.SLOs {
		fmt.Fprintf(w, "stm_slo_alerts_total{slo=%q} %d\n", s.Name, s.Alerts)
	}
}
