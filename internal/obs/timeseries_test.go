package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTSCounterStrings pins every counter to a stable metric label.
func TestTSCounterStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := TSCounter(0); c < NumTSCounters; c++ {
		name := c.String()
		if strings.HasPrefix(name, "TSCounter(") {
			t.Errorf("counter %d has no label", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter label %q", name)
		}
		seen[name] = true
	}
}

// TestSLONormalize covers defaulting and every rejection path.
func TestSLONormalize(t *testing.T) {
	const interval = 100 * time.Millisecond
	const capacity = 600

	o, err := SLO{Kind: SLOAbortRate, MaxRate: 0.1}.Normalize(interval, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "abort-rate" || o.Fast != DefaultSLOFast || o.Slow != DefaultSLOSlow || o.Burn != DefaultSLOBurn {
		t.Errorf("abort-rate defaults: %+v", o)
	}

	o, err = SLO{Kind: SLOLatencyP99, MaxNs: 1e6}.Normalize(interval, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if o.Phase != "total" || o.Name != "latency-p99-total" {
		t.Errorf("latency defaults: %+v", o)
	}
	if got := o.Objective(); got != "p99(total)<=1ms" {
		t.Errorf("objective: %q", got)
	}

	bad := []SLO{
		{Kind: SLOAbortRate},                                                           // MaxRate unset
		{Kind: SLOAbortRate, MaxRate: 1.5},                                             // MaxRate > 1
		{Kind: SLOLatencyP99},                                                          // MaxNs unset
		{Kind: SLOLatencyP99, MaxNs: 1, Phase: "collect"},                              // server phase
		{Kind: SLOKind(99), MaxRate: 0.1},                                              // unknown kind
		{Kind: SLOAbortRate, MaxRate: 0.1, Burn: 0.5},                                  // burn below 1
		{Kind: SLOAbortRate, MaxRate: 0.1, Fast: time.Millisecond},                     // fast < interval
		{Kind: SLOAbortRate, MaxRate: 0.1, Fast: time.Second, Slow: time.Second},       // fast !< slow
		{Kind: SLOAbortRate, MaxRate: 0.1, Fast: time.Second, Slow: 600 * time.Second}, // slow > ring
	}
	for i, s := range bad {
		if _, err := s.Normalize(interval, capacity); err == nil {
			t.Errorf("bad[%d] %+v: Normalize accepted it", i, s)
		}
	}
}

// TestNilEngine checks every accessor on a nil receiver (the knob-off state).
func TestNilEngine(t *testing.T) {
	var ts *TimeSeries
	if ts.Enabled() || ts.Interval() != 0 {
		t.Error("nil engine should report disabled")
	}
	ts.Push(TSSample{}) // must not panic
	if rep := ts.Report(); rep.Enabled {
		t.Error("nil engine Report should be disabled")
	}
	if ts.AlertCount() != 0 {
		t.Error("nil engine alert count")
	}
	if _, ok := ts.LastAlert(); ok {
		t.Error("nil engine last alert")
	}
}

// tsSampleAt builds a cumulative sample: totals, not deltas.
func tsSampleAt(nanos int64, commits, aborts uint64) TSSample {
	var s TSSample
	s.UnixNanos = nanos
	s.Counters[TSCommits] = commits
	s.Counters[TSAborts] = aborts
	return s
}

// TestPushDeltaEncoding checks that the first push is baseline-only, later
// pushes record per-window deltas, and counter regressions clamp to zero.
func TestPushDeltaEncoding(t *testing.T) {
	ts := NewTimeSeries(8, 100*time.Millisecond, nil)
	ts.Push(tsSampleAt(0, 100, 10))
	if rep := ts.Report(); rep.Windows != 0 || rep.Seq != 0 {
		t.Fatalf("baseline push created a window: %+v", rep)
	}
	ts.Push(tsSampleAt(1e8, 250, 10))
	rep := ts.Report()
	if rep.Windows != 1 || rep.Seq != 1 {
		t.Fatalf("after one delta push: windows=%d seq=%d", rep.Windows, rep.Seq)
	}
	w := rep.Recent[0]
	if w.Counters["commits"] != 150 || w.Counters["aborts"] != 0 || w.DurNs != 1e8 {
		t.Errorf("window delta: %+v", w)
	}
	if w.AbortRate != 0 {
		t.Errorf("abort rate: %v", w.AbortRate)
	}

	// Regressed counter (torn multi-load snapshot): clamp to zero, not wrap.
	ts.Push(tsSampleAt(2e8, 240, 20))
	w = ts.Report().Recent[1]
	if w.Counters["commits"] != 0 {
		t.Errorf("regression should clamp to 0, got %d", w.Counters["commits"])
	}
	if w.Counters["aborts"] != 10 {
		t.Errorf("independent counter delta: %+v", w.Counters)
	}
	if w.AbortRate != 1.0 {
		t.Errorf("abort rate with clamped commits: %v", w.AbortRate)
	}
}

// TestRingWrap fills a small ring past capacity and checks retention.
func TestRingWrap(t *testing.T) {
	ts := NewTimeSeries(4, 100*time.Millisecond, nil)
	for i := int64(0); i <= 7; i++ {
		ts.Push(tsSampleAt(i*1e8, uint64(i)*100, 0))
	}
	rep := ts.Report()
	if rep.Windows != 4 || rep.Seq != 7 {
		t.Fatalf("windows=%d seq=%d", rep.Windows, rep.Seq)
	}
	// Recent is oldest-first: the four newest windows survive.
	for i, w := range rep.Recent {
		if w.Counters["commits"] != 100 {
			t.Errorf("recent[%d]: %+v", i, w)
		}
	}
	if got := rep.Recent[len(rep.Recent)-1].UnixNanos; got != 7e8 {
		t.Errorf("newest window ends at %d", got)
	}
}

// TestAbortRateBurnAlert drives the multi-window rule end to end: no alert
// while the ring is still filling, no alert when only the fast window burns,
// a single rising-edge alert when both burn, and re-arm after recovery.
func TestAbortRateBurnAlert(t *testing.T) {
	const interval = 100 * time.Millisecond
	slo, err := SLO{Kind: SLOAbortRate, MaxRate: 0.25, Fast: 200 * time.Millisecond, Slow: 400 * time.Millisecond}.Normalize(interval, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimeSeries(16, interval, []SLO{slo})

	now, commits, aborts := int64(0), uint64(0), uint64(0)
	push := func(dc, da uint64) {
		now += int64(interval)
		commits += dc
		aborts += da
		ts.Push(tsSampleAt(now, commits, aborts))
	}

	push(100, 0) // baseline
	// Aborting from the very first window: burn must stay 0 until the ring
	// holds the slow span (startup transients cannot alert).
	push(100, 100)
	push(100, 100)
	push(100, 100)
	if n := ts.AlertCount(); n != 0 {
		t.Fatalf("alerted with %d windows held (slow span is 4)", 3)
	}
	push(100, 100) // 4 windows held: fast rate 0.5 burn 2, slow rate 0.5 burn 2
	if n := ts.AlertCount(); n != 1 {
		t.Fatalf("alert count after both windows burn: %d", n)
	}
	a, ok := ts.LastAlert()
	if !ok || a.SLO != "abort-rate" || a.FastBurn < 2 || a.SlowBurn < 2 {
		t.Fatalf("alert: %+v ok=%v", a, ok)
	}
	if a.Window.Counters["aborts"] != 100 {
		t.Errorf("alert should carry the tripping window: %+v", a.Window)
	}

	// Still firing: no second rising edge.
	push(100, 100)
	if n := ts.AlertCount(); n != 1 {
		t.Fatalf("level-triggered alert (want rising edge only): %d", n)
	}
	st := ts.Report().SLOs[0]
	if !st.Firing || st.Alerts != 1 {
		t.Fatalf("status: %+v", st)
	}

	// Recovery: clean windows drain both burns below threshold.
	for i := 0; i < 4; i++ {
		push(100, 0)
	}
	if st := ts.Report().SLOs[0]; st.Firing {
		t.Fatalf("still firing after recovery: %+v", st)
	}
	// Relapse: a fresh rising edge records a second alert.
	for i := 0; i < 4; i++ {
		push(100, 100)
	}
	if n := ts.AlertCount(); n != 2 {
		t.Fatalf("alert count after relapse: %d", n)
	}
}

// TestLatencyBurn checks the p99 objective: the burn is the windowed fraction
// of samples above the objective over the 1% budget, gated on a minimum
// sample count.
func TestLatencyBurn(t *testing.T) {
	const interval = 100 * time.Millisecond
	slo, err := SLO{Kind: SLOLatencyP99, MaxNs: 1 << 20, Fast: 200 * time.Millisecond, Slow: 400 * time.Millisecond}.Normalize(interval, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimeSeries(16, interval, []SLO{slo})

	var s TSSample
	push := func(fast, slow uint64) {
		s.UnixNanos += int64(interval)
		for i := uint64(0); i < fast; i++ {
			s.Phases[NumTSPhases-1].Record(1000) // well under the objective
		}
		for i := uint64(0); i < slow; i++ {
			s.Phases[NumTSPhases-1].Record(1 << 24) // far over the objective
		}
		ts.Push(s)
	}
	push(0, 0) // baseline
	// Four windows of all-slow samples: every sample blows the objective, so
	// the burn is 1.0/0.01 = 100x on both windows — firing.
	for i := 0; i < 4; i++ {
		push(0, 20)
	}
	st := ts.Report().SLOs[0]
	if !st.Firing || st.FastBurn < 50 || st.SlowBurn < 50 {
		t.Fatalf("latency SLO should fire: %+v", st)
	}
	if n := ts.AlertCount(); n != 1 {
		t.Fatalf("alert count: %d", n)
	}

	// Under-sampled windows carry no signal: fewer than sloMinSamples slow
	// observations per evaluated span keep the burn at zero.
	ts2 := NewTimeSeries(16, interval, []SLO{slo})
	s = TSSample{}
	for i := 0; i <= 4; i++ {
		s.UnixNanos += int64(interval)
		if i > 0 {
			s.Phases[NumTSPhases-1].Record(1 << 24)
		}
		ts2.Push(s)
	}
	if st := ts2.Report().SLOs[0]; st.Firing || st.FastBurn != 0 {
		t.Fatalf("under-sampled window should not burn: %+v", st)
	}
}

// TestAlertLogBounded drives hundreds of rising edges and checks that the
// retained log stays bounded while the totals keep counting.
func TestAlertLogBounded(t *testing.T) {
	const interval = 100 * time.Millisecond
	slo, err := SLO{Kind: SLOAbortRate, MaxRate: 0.5, Fast: interval, Slow: 2 * interval}.Normalize(interval, 8)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimeSeries(8, interval, []SLO{slo})
	now, commits, aborts := int64(0), uint64(0), uint64(0)
	push := func(dc, da uint64) {
		now += int64(interval)
		commits += dc
		aborts += da
		ts.Push(tsSampleAt(now, commits, aborts))
	}
	push(100, 0)
	const edges = maxAlerts + 9
	for i := 0; i < edges; i++ {
		push(0, 100) // all-abort: both 1- and 2-window burns hit 2x
		push(0, 100)
		push(100, 0) // recover
		push(100, 0)
	}
	rep := ts.Report()
	if rep.AlertsTotal != edges {
		t.Fatalf("alerts total: %d want %d", rep.AlertsTotal, edges)
	}
	if len(rep.Alerts) != maxAlerts {
		t.Fatalf("retained alert log: %d want %d", len(rep.Alerts), maxAlerts)
	}
	if rep.SLOs[0].Alerts != edges {
		t.Fatalf("per-SLO alert count: %d", rep.SLOs[0].Alerts)
	}
}

// TestTimeSeriesOpenMetrics spot-checks the rendered families and the
// HELP-before-TYPE ordering.
func TestTimeSeriesOpenMetrics(t *testing.T) {
	const interval = 100 * time.Millisecond
	slo, err := SLO{Kind: SLOAbortRate, MaxRate: 0.25, Fast: 200 * time.Millisecond, Slow: 400 * time.Millisecond}.Normalize(interval, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimeSeries(16, interval, []SLO{slo})
	for i := int64(0); i <= 4; i++ {
		ts.Push(tsSampleAt(i*int64(interval), uint64(i)*100, uint64(i)*150))
	}
	rep := ts.Report()
	var b strings.Builder
	rep.WriteOpenMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP stm_rate ",
		"# TYPE stm_rate gauge",
		`stm_rate{metric="commits",window="100ms"}`,
		`stm_window_quantile_ns{phase="total",q="0.99",window="400ms"}`,
		`stm_slo_burn{slo="abort-rate",window="fast"}`,
		`stm_slo_firing{slo="abort-rate"} 1`,
		`stm_slo_alerts_total{slo="abort-rate"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	var off strings.Builder
	(&TimeSeriesReport{}).WriteOpenMetrics(&off)
	if !strings.Contains(off.String(), "stm_timeseries_enabled 0") {
		t.Errorf("disabled exposition: %s", off.String())
	}
	if strings.Contains(off.String(), "stm_rate") {
		t.Errorf("disabled exposition should stop at the enabled gauge: %s", off.String())
	}
}
