package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON array, the format
// understood by Perfetto and chrome://tracing. Timestamps and durations are
// microseconds (floats, so nanosecond precision survives).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const tracePID = 1 // one process: the STM instance

// WriteChromeTrace serializes every ring as Chrome trace-event JSON: one
// track (tid) per actor, named via thread_name metadata, span kinds as "X"
// complete events, instants as thread-scoped "i" events, and queue-depth /
// step-ahead samples as "C" counter events. Abort instants carry their
// reason name in args. Call only after the writers have quiesced (after
// System.Close, or with tracing paused).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	for tid := range t.rings {
		evs = append(evs, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  tracePID,
			TID:  tid,
			Args: map[string]any{"name": t.names[tid]},
		})
		for _, e := range t.rings[tid].Snapshot() {
			evs = append(evs, chromeify(e, tid))
		}
	}
	// Stable time order helps diffing and some strict viewers; metadata
	// events (ts 0) naturally sort first.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	b, err := json.Marshal(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// chromeify maps one ring event to its trace-viewer representation.
func chromeify(e Event, tid int) chromeEvent {
	out := chromeEvent{
		Name: e.Kind.String(),
		TS:   float64(e.TS) / 1e3,
		PID:  tracePID,
		TID:  tid,
	}
	switch {
	case e.Kind.isCounter():
		out.Ph = "C"
		out.Args = map[string]any{"value": e.Arg}
	case e.Dur > 0:
		out.Ph = "X"
		d := float64(e.Dur) / 1e3
		out.Dur = &d
		out.Args = spanArgs(e)
	default:
		out.Ph = "i"
		out.S = "t"
		out.Args = instantArgs(e)
	}
	return out
}

// spanArgs decodes a span event's Arg into named viewer arguments.
func spanArgs(e Event) map[string]any {
	switch e.Kind {
	case KTx:
		switch e.Arg {
		case OutcomeCommit:
			return map[string]any{"outcome": "commit"}
		case OutcomeUserAbort:
			return map[string]any{"outcome": "user-abort"}
		default:
			return map[string]any{"outcome": "abort"}
		}
	case KEpoch:
		return map[string]any{"batch": e.Arg}
	case KScan:
		return map[string]any{"pending": e.Arg}
	case KValidate:
		return map[string]any{"entries": e.Arg}
	case KInvalScan, KInvalWait:
		return map[string]any{"doomed": e.Arg}
	case KReadWait:
		return map[string]any{"var": e.Arg}
	}
	return nil
}

// instantArgs decodes an instant event's Arg.
func instantArgs(e Event) map[string]any {
	switch e.Kind {
	case KAbort:
		return map[string]any{"reason": AbortReason(e.Arg).String()}
	case KInval:
		return map[string]any{"victim": e.Arg}
	case KBegin:
		return map[string]any{"attempt": e.Arg}
	}
	return nil
}

// Summary writes an aligned per-actor digest of the rings: event counts and
// cumulative span time by kind. A cheap sanity view when a full trace viewer
// is overkill.
func (t *Tracer) Summary(w io.Writer) {
	fmt.Fprintf(w, "%-18s %-14s %10s %14s %12s\n", "actor", "event", "count", "total", "dropped")
	for tid, r := range t.rings {
		events := r.Snapshot()
		if len(events) == 0 {
			continue
		}
		var count [numKinds]uint64
		var total [numKinds]int64
		for _, e := range events {
			count[e.Kind]++
			total[e.Kind] += e.Dur
		}
		first := true
		for k := Kind(0); k < numKinds; k++ {
			if count[k] == 0 {
				continue
			}
			name, dropped := "", ""
			if first {
				name = t.names[tid]
				if d := r.Dropped(); d > 0 {
					dropped = fmt.Sprintf("%d", d)
				}
				first = false
			}
			tot := "-"
			if total[k] > 0 {
				tot = fmt.Sprintf("%.3fms", float64(total[k])/1e6)
			}
			fmt.Fprintf(w, "%-18s %-14s %10d %14s %12s\n", name, k, count[k], tot, dropped)
		}
	}
}
