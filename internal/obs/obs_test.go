package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	if got := r.Now(); got != 0 {
		t.Fatalf("nil ring Now() = %d, want 0", got)
	}
	// None of these may panic or record anything.
	r.Instant(KBegin, 1)
	r.InstantAt(KAbort, 5, 2)
	r.Span(KTx, 0, 0)
	r.SpanAt(KEpoch, 1, 2, 3)
	r.Counter(KQueueDepth, 4)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil ring reported contents")
	}
}

func TestRingRecordAndSnapshotOrder(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 5; i++ {
		r.InstantAt(KBegin, int64(i*10), uint64(i))
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if e.TS != int64(i*10) || e.Arg != uint64(i) || e.Kind != KBegin {
			t.Fatalf("snapshot[%d] = %+v", i, e)
		}
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 20; i++ {
		r.InstantAt(KCommitReq, int64(i), uint64(i))
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := uint64(12 + i); e.Arg != want {
			t.Fatalf("snapshot[%d].Arg = %d, want %d (oldest-first window)", i, e.Arg, want)
		}
	}
}

func TestRingCapacityRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 1}, {3, 4}, {4, 4}, {100, 128}} {
		r := newRing(tc.ask)
		if int(r.capacity()) != tc.want {
			t.Errorf("newRing(%d) capacity = %d, want %d", tc.ask, r.capacity(), tc.want)
		}
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := newRing(4)
	r.SpanAt(KEpoch, 100, 250, 3)
	e := r.Snapshot()[0]
	if e.TS != 100 || e.Dur != 150 || e.Arg != 3 {
		t.Fatalf("span event %+v", e)
	}
}

func TestAbortReasonStrings(t *testing.T) {
	want := map[AbortReason]string{
		AbortInvalidated: "invalidated",
		AbortValidation:  "validation",
		AbortSelf:        "self",
		AbortLocked:      "locked",
		AbortExplicit:    "explicit",
	}
	if len(AbortReasons) != int(NumAbortReasons) {
		t.Fatalf("AbortReasons lists %d reasons, want %d", len(AbortReasons), NumAbortReasons)
	}
	for _, r := range AbortReasons {
		if r.String() != want[r] {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want[r])
		}
	}
	if s := AbortReason(99).String(); s != "AbortReason(99)" {
		t.Errorf("unknown reason string %q", s)
	}
}

func TestKindStringsAreUnique(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

// chromeFile is the subset of the trace-event JSON the tests inspect.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	client := tr.AddActor("client-0")
	server := tr.AddActor("commit-server")

	client.InstantAt(KBegin, 1000, 1)
	client.SpanAt(KTx, 1000, 4000, OutcomeAbort)
	client.InstantAt(KAbort, 4000, uint64(AbortValidation))
	server.SpanAt(KEpoch, 2000, 3000, 2)
	server.Counter(KQueueDepth, 7)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}

	tracks := map[string]bool{}
	var abortReason, outcome any
	sawCounter, sawSpan := false, false
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("metadata event named %q", e.Name)
			}
			tracks[e.Args["name"].(string)] = true
		case "i":
			if e.Name == "abort" {
				abortReason = e.Args["reason"]
			}
		case "X":
			sawSpan = true
			if e.Dur == nil {
				t.Errorf("X event %q without dur", e.Name)
			}
			if e.Name == "tx" {
				outcome = e.Args["outcome"]
			}
		case "C":
			sawCounter = true
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if !tracks["client-0"] || !tracks["commit-server"] {
		t.Fatalf("missing thread_name tracks: %v", tracks)
	}
	if abortReason != "validation" {
		t.Fatalf("abort reason annotation = %v", abortReason)
	}
	if outcome != "abort" {
		t.Fatalf("tx outcome annotation = %v", outcome)
	}
	if !sawSpan || !sawCounter {
		t.Fatalf("span=%v counter=%v events missing", sawSpan, sawCounter)
	}
}

func TestChromeTraceEventsSortedByTime(t *testing.T) {
	tr := NewTracer(16)
	a := tr.AddActor("a")
	b := tr.AddActor("b")
	a.InstantAt(KBegin, 300, 0)
	b.InstantAt(KBegin, 100, 0)
	a.InstantAt(KBegin, 200, 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, e := range f.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("events out of order: %v after %v", e.TS, last)
		}
		last = e.TS
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer(16)
	r := tr.AddActor("client-0")
	r.InstantAt(KBegin, 0, 1)
	r.SpanAt(KTx, 0, 500, OutcomeCommit)
	var buf bytes.Buffer
	tr.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"client-0", "begin", "tx"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	Publish("obs-test", func() any { return map[string]int{"x": 1} })
	Publish("obs-test", func() any { return nil }) // idempotent re-publish

	addr, shutdown, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if addr == "" {
		t.Fatal("empty bound address")
	}
}

// BenchmarkTraceOverhead compares a representative hot-path sequence (the
// events one committed transaction records) against the same sequence on a
// nil ring, which is what disabled tracing executes. The nil case must be
// within noise of free; the enabled case is bounded by a few clock reads.
func BenchmarkTraceOverhead(b *testing.B) {
	attempt := func(r *Ring) {
		t0 := r.Now()
		r.InstantAt(KBegin, t0, 1)
		tc := r.Now()
		r.Span(KCommit, tc, 0)
		r.Span(KTx, t0, OutcomeCommit)
	}
	b.Run("disabled", func(b *testing.B) {
		var r *Ring
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			attempt(r)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		r := newRing(DefaultRingEvents)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			attempt(r)
		}
	})
}
