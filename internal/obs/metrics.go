package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
)

// published guards against duplicate expvar names (expvar.Publish panics on
// re-registration, which would otherwise make repeated benchmark runs in one
// process fatal).
var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// Publish registers fn under name on the process-wide expvar registry,
// idempotently: re-publishing an existing name replaces nothing and is not
// an error (the first registration's func pointer keeps serving, which is
// fine for the snapshot closures this package is used with).
func Publish(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(fn))
}

// ServeMetrics binds addr and serves the standard observability endpoints:
//
//	/debug/vars          expvar (all Published funcs + Go runtime vars)
//	/debug/pprof/...     net/http/pprof (profiles carry the goroutine
//	                     labels core sets on client/server goroutines)
//
// It returns the bound address (useful with ":0") and a shutdown func. The
// server runs until the process exits or the shutdown func is called.
func ServeMetrics(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // shutdown path returns ErrServerClosed
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
