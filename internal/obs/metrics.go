package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
)

// published maps expvar names to an indirection cell holding the current
// snapshot func. expvar.Publish panics on re-registration, so the expvar
// entry is registered once per name and reads the cell — re-Publishing a
// name swaps the cell contents, which is what lets tests and benchmarks
// create System after System without /debug/vars serving the first one's
// stats forever.
var (
	publishMu sync.Mutex
	published = map[string]*atomic.Pointer[func() any]{}
)

// Publish registers fn under name on the process-wide expvar registry.
// Unlike expvar.Publish, re-publishing an existing name is not an error:
// the name's expvar entry is redirected to the new fn, so the endpoint
// always serves the most recently published snapshot source.
func Publish(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	cell, ok := published[name]
	if !ok {
		cell = &atomic.Pointer[func() any]{}
		published[name] = cell
		expvar.Publish(name, expvar.Func(func() any {
			return (*cell.Load())()
		}))
	}
	cell.Store(&fn)
}

// family writes one metric family's # HELP and # TYPE header. Every family
// the package exposes goes through it, which is what the exposition
// conformance test (every # TYPE has a matching # HELP) leans on.
func family(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// serverFamilyHelp maps the server-side histogram families to their # HELP
// text; families added by future engines fall back to a generic line rather
// than omitting HELP (the conformance test requires one per TYPE).
var serverFamilyHelp = map[string]string{
	"stm_server_phase_ns":    "Commit-server per-epoch phase durations, in nanoseconds.",
	"stm_server_queue_depth": "Pending commit requests observed by each epoch's collection scan.",
	"stm_server_step_ahead":  "RInvalV3 step-ahead occupancy when each epoch started.",
	"stm_batch_size":         "Group-commit batch sizes, one sample per epoch.",
}

// MetricsPage is everything one /metrics scrape exposes: the conflict
// report's scalar counters, the critical-path latency histograms, the
// commit-server phase histograms — the latter two as proper OpenMetrics
// histogram families with cumulative le buckets — and, when the windowed
// telemetry engine is on, its rate/quantile/SLO gauges.
type MetricsPage struct {
	Conflict ConflictReport
	Latency  LatencyReport
	// Server holds histogram-typed series beyond the latency report —
	// the Stats.Server phase histograms, one NamedHistogram per
	// (family, label set) child; families are grouped for # TYPE lines in
	// first-appearance order.
	Server []NamedHistogram
	// TimeSeries is the windowed-telemetry report, nil when
	// Config.TimeSeries is off (the families are then absent entirely).
	TimeSeries *TimeSeriesReport
}

// WriteOpenMetrics renders the whole page (no trailing # EOF; the handler
// appends it once).
func (p *MetricsPage) WriteOpenMetrics(w io.Writer) {
	p.Conflict.WriteOpenMetrics(w)
	p.Latency.WriteOpenMetrics(w)
	typed := map[string]bool{}
	for i := range p.Server {
		nh := &p.Server[i]
		if !typed[nh.Name] {
			typed[nh.Name] = true
			help, ok := serverFamilyHelp[nh.Name]
			if !ok {
				help = "Server-side histogram family."
			}
			family(w, nh.Name, "histogram", help)
		}
		WriteOpenMetricsHistogram(w, nh.Name, nh.Labels, &nh.Hist)
	}
	if p.TimeSeries != nil {
		p.TimeSeries.WriteOpenMetrics(w)
	}
}

// openMetricsSource holds the current OpenMetrics page source for the
// /metrics endpoint, swappable the same way Publish entries are.
var openMetricsSource atomic.Pointer[func() MetricsPage]

// PublishOpenMetrics sets the page source behind the /metrics endpoint.
// Later calls replace earlier ones (latest System wins, matching Publish).
func PublishOpenMetrics(fn func() MetricsPage) {
	openMetricsSource.Store(&fn)
}

// serveOpenMetrics renders the current page source as an OpenMetrics text
// exposition. With no source published it serves an empty exposition rather
// than an error, so scrapers configured before the first System come up clean.
func serveOpenMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if fn := openMetricsSource.Load(); fn != nil {
		page := (*fn)()
		page.WriteOpenMetrics(w)
	}
	fmt.Fprintf(w, "# EOF\n")
}

// timeSeriesSource holds the current windowed-telemetry report source for
// the /debug/stm/timeseries endpoint, swappable like the other publishers.
var timeSeriesSource atomic.Pointer[func() *TimeSeriesReport]

// PublishTimeSeries sets the report source behind /debug/stm/timeseries.
// Later calls replace earlier ones (latest System wins). The source may
// return nil (engine off), which the endpoint serves as enabled=false.
func PublishTimeSeries(fn func() *TimeSeriesReport) {
	timeSeriesSource.Store(&fn)
}

// serveTimeSeries renders the current windowed-telemetry report as JSON.
func serveTimeSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var rep *TimeSeriesReport
	if fn := timeSeriesSource.Load(); fn != nil {
		rep = (*fn)()
	}
	if rep == nil {
		rep = &TimeSeriesReport{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(rep) //nolint:errcheck // client hangup is the only failure
}

// ServeMetrics binds addr and serves the standard observability endpoints:
//
//	/metrics                OpenMetrics/Prometheus text (conflict attribution,
//	                        abort taxonomy, windowed rates/SLO gauges; see
//	                        PublishOpenMetrics)
//	/debug/stm/timeseries   windowed-telemetry report as JSON (see
//	                        PublishTimeSeries)
//	/debug/vars             expvar (all Published funcs + Go runtime vars)
//	/debug/pprof/...        net/http/pprof (profiles carry the goroutine
//	                        labels core sets on client/server goroutines)
//
// It returns the bound address (useful with ":0") and a shutdown func. The
// server runs until the process exits or the shutdown func is called.
func ServeMetrics(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", serveOpenMetrics)
	mux.HandleFunc("/debug/stm/timeseries", serveTimeSeries)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // shutdown path returns ErrServerClosed
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
