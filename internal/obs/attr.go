package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/padded"
)

// This file is the conflict-attribution substrate: who-aborted-whom counters,
// bloom false-positive accounting, hot-var sampling, and wasted-work totals.
// Like the trace rings, everything here is nil-receiver-safe: internal/core
// holds a nil *Attribution when Config.Attribution is off, so every record
// site on the transaction hot path compiles down to a nil check.
//
// Concurrency model: slot i's thread is the only writer of slot i's row,
// reservoir, and wasted-work counters, but ConflictReport may be sampled
// while transactions run, so every mutable word is accessed atomically
// (single-writer atomics: no CAS loops needed, plain atomic add/store).

// ConflictMatrix counts invalidation aborts per (committer slot, victim
// slot) pair — the only abort reason with a well-defined "whom". One extra
// committer index — Unknown() — absorbs invalidation aborts whose killer
// descriptor was lost to a racing doomer, so the full matrix sum stays
// exactly the taxonomy's AbortInvalidated count (the victim increments one
// cell per invalidation abort, no more, no less).
//
// Layout: one row per victim, since the victim's abort path is the writer
// (see DESIGN.md §10 for why attribution records there); rows are padded to
// whole cache lines so two victims' counters never share a line.
type ConflictMatrix struct {
	slots  int
	stride int // row length in uint64 words, a cache-line multiple
	cells  []uint64
}

// NewConflictMatrix returns a zeroed slots x (slots+1) matrix.
func NewConflictMatrix(slots int) *ConflictMatrix {
	const wordsPerLine = padded.CacheLineSize / 8
	stride := (slots + 1 + wordsPerLine - 1) / wordsPerLine * wordsPerLine
	return &ConflictMatrix{
		slots:  slots,
		stride: stride,
		cells:  make([]uint64, slots*stride),
	}
}

// Slots returns the number of victim slots (and of real committer slots).
func (m *ConflictMatrix) Slots() int {
	if m == nil {
		return 0
	}
	return m.slots
}

// Unknown returns the committer index used when no committer slot is known.
func (m *ConflictMatrix) Unknown() int { return m.slots }

// Record counts one abort of victim by committer (Unknown() for none).
// Victim's thread is the only writer of victim's row; the add is atomic so
// concurrent Snapshot reads are race-free.
//
//stm:hotpath
func (m *ConflictMatrix) Record(committer, victim int) {
	if m == nil {
		return
	}
	atomic.AddUint64(&m.cells[victim*m.stride+committer], 1)
}

// Snapshot returns the matrix as [committer][victim] counts — the
// who-aborted-whom orientation reports use — with the Unknown committer as
// the final row. Safe to call while victims are recording.
func (m *ConflictMatrix) Snapshot() [][]uint64 {
	if m == nil {
		return nil
	}
	out := make([][]uint64, m.slots+1)
	for c := range out {
		out[c] = make([]uint64, m.slots)
		for v := 0; v < m.slots; v++ {
			out[c][v] = atomic.LoadUint64(&m.cells[v*m.stride+c])
		}
	}
	return out
}

// reservoirCap is the default per-slot hot-var reservoir capacity.
const reservoirCap = 128

// Reservoir is a fixed-capacity uniform sample (Algorithm R) of conflicting
// Var identities, one per slot. The owning thread is the only writer; the
// sampled ids are stored atomically so report snapshots can run concurrently.
type Reservoir struct {
	seen uint64 // offers so far (atomic)
	rng  uint64 // splitmix64 state, owner-only
	cap  uint64 // len(ids), immutable after construction
	ids  []uint64
}

func newReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = reservoirCap
	}
	return &Reservoir{rng: seed, cap: uint64(capacity), ids: make([]uint64, capacity)}
}

// splitmix is the SplitMix64 step, the reservoir's deterministic randomness
// source (math/rand would allocate and lock on this path).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Offer feeds one conflicting Var id into the sample. Only the owning slot's
// thread may call it.
//
//stm:hotpath
func (r *Reservoir) Offer(id uint64) {
	n := atomic.LoadUint64(&r.seen)
	if n < r.cap {
		atomic.StoreUint64(&r.ids[n], id)
	} else {
		r.rng = splitmix(r.rng)
		if j := r.rng % (n + 1); j < r.cap {
			atomic.StoreUint64(&r.ids[j], id)
		}
	}
	atomic.AddUint64(&r.seen, 1)
}

// sample appends the currently retained ids to buf.
func (r *Reservoir) sample(buf []uint64) []uint64 {
	n := atomic.LoadUint64(&r.seen)
	if n > r.cap {
		n = r.cap
	}
	for i := uint64(0); i < n; i++ {
		buf = append(buf, atomic.LoadUint64(&r.ids[i]))
	}
	return buf
}

// attrSlot is one victim slot's attribution state. The trailing pad keeps
// adjacent slots' hot words off each other's cache lines in the []attrSlot.
type attrSlot struct {
	wastedNs  [NumAbortReasons]uint64 // ns burned in aborted attempts (atomic)
	wastedOps [NumAbortReasons]uint64 // reads+writes burned in aborted attempts (atomic)
	fpSampled uint64                  // invalidation dooms exactness-checked (atomic)
	fpFalse   uint64                  // ... of which the exact sets were disjoint (atomic)
	res       *Reservoir
	_         [padded.CacheLineSize]byte
}

// Attribution aggregates conflict attribution for one System: the
// who-aborted-whom matrix, per-slot hot-var reservoirs, wasted-work totals,
// and bloom false-positive accounting. All recording methods are nil-safe.
type Attribution struct {
	matrix *ConflictMatrix
	slots  []attrSlot
}

// NewAttribution returns attribution state for `slots` victim slots with the
// given per-slot reservoir capacity (<=0 selects the default 128). The seed
// derives each reservoir's deterministic sampling stream.
func NewAttribution(slots, reservoir int, seed uint64) *Attribution {
	a := &Attribution{
		matrix: NewConflictMatrix(slots),
		slots:  make([]attrSlot, slots),
	}
	for i := range a.slots {
		a.slots[i].res = newReservoir(reservoir, splitmix(seed+uint64(i)))
	}
	return a
}

// Unknown returns the committer index for aborts with no identifiable
// committer. Safe on nil (returns 0, but nil recorders drop the value).
func (a *Attribution) Unknown() int {
	if a == nil {
		return 0
	}
	return a.matrix.Unknown()
}

// RecordAbort charges one conflict abort of victim to committer
// (a.Unknown() when unidentified) and accounts the attempt's wasted work.
// Only invalidation aborts enter the matrix — validation/locked/self aborts
// have no committer, so they are accounted per reason only; this keeps the
// matrix sum equal to the taxonomy's AbortInvalidated counter.
//
//stm:hotpath
func (a *Attribution) RecordAbort(committer, victim int, reason AbortReason, ns, ops uint64) {
	if a == nil {
		return
	}
	if reason == AbortInvalidated {
		a.matrix.Record(committer, victim)
	}
	s := &a.slots[victim]
	atomic.AddUint64(&s.wastedNs[reason], ns)
	atomic.AddUint64(&s.wastedOps[reason], ops)
}

// OfferVar samples one conflicting Var id into victim's reservoir.
//
//stm:hotpath
func (a *Attribution) OfferVar(victim int, id uint64) {
	if a == nil {
		return
	}
	a.slots[victim].res.Offer(id)
}

// RecordFPCheck accounts one sampled exact read-set/write-set check:
// falsePositive means the bloom intersection that doomed the victim had no
// counterpart in the exact sets.
//
//stm:hotpath
func (a *Attribution) RecordFPCheck(victim int, falsePositive bool) {
	if a == nil {
		return
	}
	s := &a.slots[victim]
	atomic.AddUint64(&s.fpSampled, 1)
	if falsePositive {
		atomic.AddUint64(&s.fpFalse, 1)
	}
}

// HotVar is one entry of the top-K contended-variable table.
type HotVar struct {
	ID      uint64  `json:"id"`
	Name    string  `json:"name,omitempty"` // from NewVarNamed, when labeled
	Samples uint64  `json:"samples"`
	Share   float64 `json:"share"` // fraction of all retained samples
}

// FPStats is the bloom false-positive estimate from the sampled exact checks.
type FPStats struct {
	Sampled       uint64  `json:"sampled"`        // dooms exactness-checked
	FalsePositive uint64  `json:"false_positive"` // ... with disjoint exact sets
	Rate          float64 `json:"rate"`           // FalsePositive / Sampled
}

// ConflictReport is the JSON-serializable attribution snapshot served by
// System.ConflictReport and consumed by cmd/stmtop.
type ConflictReport struct {
	Enabled bool `json:"enabled"`
	Slots   int  `json:"slots"`
	// Matrix is [committer][victim] invalidation-abort counts; the final row
	// (index Slots) is the unknown committer (killer descriptor lost to a
	// racing doomer). Other abort reasons never enter the matrix.
	Matrix [][]uint64 `json:"matrix,omitempty"`
	// InvalidationAborts is the full matrix sum (unknown row included); it
	// equals Stats.AbortReasons[AbortInvalidated] at quiescence.
	InvalidationAborts uint64 `json:"invalidation_aborts"`
	// Commits/Aborts/AbortReasons mirror the Stats the report was built from,
	// so a dashboard needs a single snapshot.
	Commits      uint64            `json:"commits"`
	Aborts       uint64            `json:"aborts"`
	AbortReasons map[string]uint64 `json:"abort_reasons,omitempty"`
	// ReadOnly counts committed transactions that wrote nothing; ROCommits
	// the subset that finished on the multi-version snapshot path (zero
	// aborts, zero invalidation-scan work), ROFallbacks the snapshot attempts
	// that fell off the bounded version ring and re-ran on the regular path.
	// Carried whether or not attribution is enabled, like Commits/Aborts.
	ReadOnly    uint64 `json:"read_only"`
	ROCommits   uint64 `json:"ro_commits"`
	ROFallbacks uint64 `json:"ro_fallbacks"`
	// WastedNs/WastedOps are time and operations burned in aborted attempts,
	// per abort reason.
	WastedNs  map[string]uint64 `json:"wasted_ns,omitempty"`
	WastedOps map[string]uint64 `json:"wasted_ops,omitempty"`
	// FP is the bloom false-positive estimate; FilterBits the geometry it
	// was measured against.
	FP         FPStats `json:"fp"`
	FilterBits int     `json:"filter_bits"`
	// HotVars is the top-K contended-variable table aggregated from the
	// per-slot reservoirs; HotVarSamples the retained sample count behind it.
	HotVars       []HotVar `json:"hot_vars,omitempty"`
	HotVarSamples uint64   `json:"hot_var_samples"`
}

// ReportMeta carries the System-level context Attribution cannot see.
type ReportMeta struct {
	Commits      uint64
	Aborts       uint64
	ReadOnly     uint64
	ROCommits    uint64
	ROFallbacks  uint64
	AbortReasons [NumAbortReasons]uint64
	FilterBits   int
	TopK         int                 // hot-var table size (<=0 selects 16)
	NameOf       func(uint64) string // optional Var label resolver
}

// Report builds a ConflictReport snapshot. Safe to call while transactions
// run (each counter is read atomically; the snapshot is not a single
// instant). On a nil receiver it returns a report with Enabled=false.
func (a *Attribution) Report(meta ReportMeta) ConflictReport {
	rep := ConflictReport{
		Commits:      meta.Commits,
		Aborts:       meta.Aborts,
		ReadOnly:     meta.ReadOnly,
		ROCommits:    meta.ROCommits,
		ROFallbacks:  meta.ROFallbacks,
		FilterBits:   meta.FilterBits,
		AbortReasons: make(map[string]uint64, NumAbortReasons),
	}
	for _, r := range AbortReasons {
		rep.AbortReasons[r.String()] = meta.AbortReasons[r]
	}
	if a == nil {
		return rep
	}
	rep.Enabled = true
	rep.Slots = a.matrix.Slots()
	rep.Matrix = a.matrix.Snapshot()
	for _, row := range rep.Matrix {
		for _, n := range row {
			rep.InvalidationAborts += n
		}
	}
	rep.WastedNs = make(map[string]uint64, NumAbortReasons)
	rep.WastedOps = make(map[string]uint64, NumAbortReasons)
	var sample []uint64
	for i := range a.slots {
		s := &a.slots[i]
		for _, r := range AbortReasons {
			rep.WastedNs[r.String()] += atomic.LoadUint64(&s.wastedNs[r])
			rep.WastedOps[r.String()] += atomic.LoadUint64(&s.wastedOps[r])
		}
		rep.FP.Sampled += atomic.LoadUint64(&s.fpSampled)
		rep.FP.FalsePositive += atomic.LoadUint64(&s.fpFalse)
		sample = s.res.sample(sample)
	}
	if rep.FP.Sampled > 0 {
		rep.FP.Rate = float64(rep.FP.FalsePositive) / float64(rep.FP.Sampled)
	}
	rep.HotVarSamples = uint64(len(sample))
	rep.HotVars = topK(sample, meta.TopK, meta.NameOf)
	return rep
}

// Totals sums the scalar attribution counters across slots without building
// a report: sampled bloom FP checks, observed false positives, and wasted
// nanoseconds over every abort reason. Alloc-free (the time-series sampler
// calls it every window); nil-safe zeros when attribution is off.
func (a *Attribution) Totals() (fpSampled, fpFalse, wastedNs uint64) {
	if a == nil {
		return 0, 0, 0
	}
	for i := range a.slots {
		s := &a.slots[i]
		fpSampled += atomic.LoadUint64(&s.fpSampled)
		fpFalse += atomic.LoadUint64(&s.fpFalse)
		for _, r := range AbortReasons {
			wastedNs += atomic.LoadUint64(&s.wastedNs[r])
		}
	}
	return fpSampled, fpFalse, wastedNs
}

// topK aggregates raw reservoir samples into the k most-sampled Vars.
func topK(sample []uint64, k int, nameOf func(uint64) string) []HotVar {
	if len(sample) == 0 {
		return nil
	}
	if k <= 0 {
		k = 16
	}
	counts := make(map[uint64]uint64, len(sample))
	for _, id := range sample {
		counts[id]++
	}
	out := make([]HotVar, 0, len(counts))
	for id, n := range counts {
		hv := HotVar{ID: id, Samples: n, Share: float64(n) / float64(len(sample))}
		if nameOf != nil {
			hv.Name = nameOf(id)
		}
		out = append(out, hv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TopKShare returns the fraction of retained samples held by the first k
// hot vars — the skew measure the conflict benchmark reports.
func (r *ConflictReport) TopKShare(k int) float64 {
	if r.HotVarSamples == 0 {
		return 0
	}
	var n uint64
	for i, hv := range r.HotVars {
		if i >= k {
			break
		}
		n += hv.Samples
	}
	return float64(n) / float64(r.HotVarSamples)
}

// WriteOpenMetrics renders the report as OpenMetrics/Prometheus text (no
// trailing "# EOF"; the /metrics handler appends it once for the whole
// exposition). Zero matrix cells are elided to keep the page proportional to
// observed conflicts, not MaxThreads².
func (r *ConflictReport) WriteOpenMetrics(w io.Writer) {
	family(w, "stm_commits", "counter", "Committed transactions.")
	fmt.Fprintf(w, "stm_commits_total %d\n", r.Commits)
	family(w, "stm_aborts", "counter", "Transaction aborts by reason (conflict reasons plus explicit user aborts).")
	for _, reason := range AbortReasons {
		fmt.Fprintf(w, "stm_aborts_total{reason=%q} %d\n", reason.String(), r.AbortReasons[reason.String()])
	}
	family(w, "stm_readonly", "counter", "Committed transactions that wrote nothing.")
	fmt.Fprintf(w, "stm_readonly_total %d\n", r.ReadOnly)
	family(w, "stm_ro_commits", "counter", "Read-only transactions committed on the multi-version snapshot path.")
	fmt.Fprintf(w, "stm_ro_commits_total %d\n", r.ROCommits)
	family(w, "stm_ro_fallbacks", "counter", "Snapshot read-only attempts that fell back to the regular path.")
	fmt.Fprintf(w, "stm_ro_fallbacks_total %d\n", r.ROFallbacks)
	family(w, "stm_attribution_enabled", "gauge", "Whether conflict attribution is collecting.")
	fmt.Fprintf(w, "stm_attribution_enabled %d\n", b2i(r.Enabled))
	if !r.Enabled {
		return
	}
	family(w, "stm_wasted_ns", "counter", "Wall-clock nanoseconds wasted in aborted attempts, by abort reason.")
	for _, reason := range AbortReasons {
		fmt.Fprintf(w, "stm_wasted_ns_total{reason=%q} %d\n", reason.String(), r.WastedNs[reason.String()])
	}
	family(w, "stm_wasted_ops", "counter", "Transactional operations wasted in aborted attempts, by abort reason.")
	for _, reason := range AbortReasons {
		fmt.Fprintf(w, "stm_wasted_ops_total{reason=%q} %d\n", reason.String(), r.WastedOps[reason.String()])
	}
	family(w, "stm_bloom_fp_checks", "counter", "Sampled exact-intersection bloom false-positive checks.")
	fmt.Fprintf(w, "stm_bloom_fp_checks_total %d\n", r.FP.Sampled)
	family(w, "stm_bloom_fp", "counter", "Sampled dooms whose exact read/write intersection was empty (bloom false positives).")
	fmt.Fprintf(w, "stm_bloom_fp_total{filter_bits=\"%d\"} %d\n", r.FilterBits, r.FP.FalsePositive)
	family(w, "stm_conflicts", "counter", "Who-aborted-whom matrix: invalidations by committer and victim slot.")
	for c, row := range r.Matrix {
		committer := fmt.Sprintf("%d", c)
		if c == r.Slots {
			committer = "unknown"
		}
		for v, n := range row {
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "stm_conflicts_total{committer=%q,victim=\"%d\"} %d\n", committer, v, n)
		}
	}
	family(w, "stm_hot_var_samples", "gauge", "Hot-var reservoir samples per conflicting Var (top-K).")
	for _, hv := range r.HotVars {
		label := hv.Name
		if label == "" {
			label = fmt.Sprintf("var-%d", hv.ID)
		}
		fmt.Fprintf(w, "stm_hot_var_samples{var=%q} %d\n", label, hv.Samples)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
