package sim

import (
	"testing"
)

func shortCfg(e Engine, threads int) Config {
	c := DefaultConfig(e, threads)
	c.Duration = 3_000_000
	return c
}

func TestEngineStringRoundTrip(t *testing.T) {
	for _, e := range Engines {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("round trip %v: %v %v", e, got, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestDeterminism(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	for _, e := range Engines {
		a := MustRun(p, w, shortCfg(e, 16))
		b := MustRun(p, w, shortCfg(e, 16))
		if a != b {
			t.Fatalf("%v: nondeterministic results\n%+v\n%+v", e, a, b)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	c1 := shortCfg(NOrec, 16)
	c2 := c1
	c2.Seed = 99
	a := MustRun(p, w, c1)
	b := MustRun(p, w, c2)
	if a.Commits == b.Commits && a.Aborts == b.Aborts {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestValidation(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	if _, err := Run(p, w, Config{Engine: NOrec, Threads: 0, Cores: 64, Duration: 1000}); err == nil {
		t.Fatal("threads=0 accepted")
	}
	if _, err := Run(p, w, Config{Engine: NOrec, Threads: 4, Cores: 1, Duration: 1000}); err == nil {
		t.Fatal("cores=1 accepted")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	for _, e := range Engines {
		r := MustRun(p, w, shortCfg(e, 32))
		a, b, c, d := r.Breakdown()
		sum := a + b + c + d
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%v: breakdown sums to %v", e, sum)
		}
		if r.Commits == 0 {
			t.Fatalf("%v: no commits", e)
		}
	}
}

func TestZeroCommitsBreakdown(t *testing.T) {
	var r Result
	a, b, c, d := r.Breakdown()
	if a+b+c+d != 0 {
		t.Fatal("empty result breakdown nonzero")
	}
	if r.ThroughputKTxPerSec(DefaultParams()) != 0 || r.AbortRate() != 0 {
		t.Fatal("empty result rates nonzero")
	}
}

// TestMutexDoesNotScale: the coarse-lock baseline's throughput must be
// roughly flat (serialized) as threads grow.
func TestMutexDoesNotScale(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	t1 := MustRun(p, w, shortCfg(Mutex, 1)).Commits
	t32 := MustRun(p, w, shortCfg(Mutex, 32)).Commits
	if float64(t32) > 3*float64(t1) {
		t.Fatalf("mutex scaled: 1thr=%d 32thr=%d", t1, t32)
	}
}

// TestNOrecBeatsMutexMidScale: at moderate thread counts an STM must beat
// the global lock on a read-heavy workload.
func TestNOrecBeatsMutexMidScale(t *testing.T) {
	p := DefaultParams()
	w := RBTree(80)
	m := MustRun(p, w, shortCfg(Mutex, 8)).Commits
	n := MustRun(p, w, shortCfg(NOrec, 8)).Commits
	if n <= m {
		t.Fatalf("NOrec (%d) did not beat mutex (%d) at 8 threads", n, m)
	}
}

// TestPaperShapeHighContention reproduces Figure 7's key claims at 48
// threads: RInval-V2 beats RInval-V1, which beats InvalSTM; RInval-V2 also
// beats NOrec at high thread counts.
func TestPaperShapeHighContention(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	at := func(e Engine) uint64 { return MustRun(p, w, shortCfg(e, 48)).Commits }
	norec, inval := at(NOrec), at(InvalSTM)
	v1, v2 := at(RInvalV1), at(RInvalV2)
	if v2 <= v1 {
		t.Errorf("V2 (%d) <= V1 (%d) at 48 threads", v2, v1)
	}
	if v1 <= inval {
		t.Errorf("V1 (%d) <= InvalSTM (%d) at 48 threads", v1, inval)
	}
	if v2 <= norec {
		t.Errorf("V2 (%d) <= NOrec (%d) at 48 threads", v2, norec)
	}
}

// TestPaperShapeLowContention: at low thread counts NOrec should lead the
// invalidation family (paper: "when contention is low, NOrec performs
// better than all other algorithms").
func TestPaperShapeLowContention(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	norec := MustRun(p, w, shortCfg(NOrec, 4)).Commits
	inval := MustRun(p, w, shortCfg(InvalSTM, 4)).Commits
	if norec <= inval {
		t.Errorf("NOrec (%d) <= InvalSTM (%d) at 4 threads", norec, inval)
	}
}

// TestLabyrinthConverges: on compute-dominated workloads all engines must
// land within a small factor of each other (paper Figure 8c).
func TestLabyrinthConverges(t *testing.T) {
	p := DefaultParams()
	w, ok := STAMP("labyrinth")
	if !ok {
		t.Fatal("labyrinth preset missing")
	}
	// The paper compares the STM engines only (Mutex serializes the long
	// in-transaction BFS and is off the chart).
	var lo, hi uint64
	for i, e := range []Engine{NOrec, InvalSTM, RInvalV1, RInvalV2, RInvalV3} {
		c := MustRun(p, w, shortCfg(e, 32)).Commits
		if i == 0 {
			lo, hi = c, c
		} else {
			lo, hi = min(lo, c), max(hi, c)
		}
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.6 {
		t.Fatalf("labyrinth engines diverge: lo=%d hi=%d", lo, hi)
	}
}

// TestGenomeReadIntensiveShape: NOrec leads the invalidation engines on the
// read-intensive genome (paper Figure 8e), with RInval between NOrec and
// InvalSTM.
func TestGenomeReadIntensiveShape(t *testing.T) {
	p := DefaultParams()
	w, _ := STAMP("genome")
	cfg := func(e Engine) Config { c := shortCfg(e, 48); c.Duration = 5_000_000; return c }
	norec := MustRun(p, w, cfg(NOrec)).Commits
	inval := MustRun(p, w, cfg(InvalSTM)).Commits
	v2 := MustRun(p, w, cfg(RInvalV2)).Commits
	if norec <= v2 {
		t.Errorf("genome: NOrec (%d) <= RInval-V2 (%d)", norec, v2)
	}
	if v2 <= inval {
		t.Errorf("genome: RInval-V2 (%d) <= InvalSTM (%d)", v2, inval)
	}
}

// TestInvalCommitCostExceedsNOrec reproduces Figure 2's observation: commit
// is more expensive under InvalSTM than under NOrec (the invalidation scan
// runs inside the critical section), measured per committed transaction.
func TestInvalCommitCostExceedsNOrec(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	perCommit := func(e Engine) float64 {
		r := MustRun(p, w, shortCfg(e, 32))
		return float64(r.CommitCycles) / float64(r.Commits)
	}
	cN, cI := perCommit(NOrec), perCommit(InvalSTM)
	if cI <= cN {
		t.Fatalf("InvalSTM commit cost %.0f <= NOrec %.0f cycles/commit", cI, cN)
	}
}

// TestSTAMPPresetsComplete ensures every Figure 3/8 app is modeled.
func TestSTAMPPresetsComplete(t *testing.T) {
	for _, name := range STAMPNames {
		w, ok := STAMP(name)
		if !ok || w.Name != name {
			t.Fatalf("preset %q missing or misnamed", name)
		}
	}
	if _, ok := STAMP("yada"); ok {
		t.Fatal("yada should be absent (excluded by the paper)")
	}
}

// TestV3BeatsV2UnderInvalLag: with one invalidation server periodically
// stalled, V3's step-ahead window keeps the commit pipeline moving while V2
// blocks on every stall (the paper's §IV-C robustness argument). Without
// lag, V2 and V3 must be near-identical (the paper withheld V3's curves for
// this reason).
func TestV3BeatsV2UnderInvalLag(t *testing.T) {
	w := RBTree(50)

	clean := DefaultParams()
	v2clean := MustRun(clean, w, shortCfg(RInvalV2, 48)).Commits
	v3clean := MustRun(clean, w, shortCfg(RInvalV3, 48)).Commits
	ratio := float64(v3clean) / float64(v2clean)
	if ratio < 0.95 || ratio > 1.1 {
		t.Fatalf("without lag V3/V2 = %.2f, want ~1", ratio)
	}

	// Short, frequent stalls: the step-ahead window can absorb a stall of
	// up to ~stepsAhead commit-service times; longer stalls block V3 too
	// (the ring bound), so the interesting regime is stalls comparable to
	// the window.
	lag := DefaultParams()
	lag.InvalLagProb = 0.05
	lag.InvalLagCycles = 5_000
	v2lag := MustRun(lag, w, shortCfg(RInvalV2, 48)).Commits
	c3 := shortCfg(RInvalV3, 48)
	c3.StepsAhead = 8
	v3lag := MustRun(lag, w, c3).Commits
	if v3lag <= v2lag {
		t.Fatalf("under lag V3 (%d) did not beat V2 (%d)", v3lag, v2lag)
	}
	if v2lag >= v2clean {
		t.Fatalf("lag did not hurt V2 (%d vs clean %d)", v2lag, v2clean)
	}
}

// TestMoreInvalServersHelp: V2's service time shrinks with more
// invalidation servers up to the point Amdahl flattens it (paper §IV-B).
func TestMoreInvalServersHelp(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	c1 := shortCfg(RInvalV2, 48)
	c1.InvalServers = 1
	c4 := shortCfg(RInvalV2, 48)
	c4.InvalServers = 4
	r1 := MustRun(p, w, c1).Commits
	r4 := MustRun(p, w, c4).Commits
	if r4 <= r1 {
		t.Fatalf("4 invalidation servers (%d) not better than 1 (%d)", r4, r1)
	}
}
