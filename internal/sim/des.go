package sim

import (
	"container/heap"
	"fmt"
)

// phase identifies what a thread does next.
type phase int

const (
	phBegin  phase = iota // start non-transactional work
	phReads               // execute the read phase
	phCommit              // execute the commit protocol
)

// event is one scheduler entry: thread th becomes runnable at time t.
type event struct {
	t   uint64
	th  int
	seq uint64 // FIFO tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// interval is a half-open busy window [start, end).
type interval struct{ start, end uint64 }

// thread is one simulated application thread.
type thread struct {
	phase     phase
	readOnly  bool   // this transaction's kind
	txStart   uint64 // when the current attempt's read phase began
	doomedAt  uint64 // 0 = not doomed; else the dooming commit's time
	running   bool   // a transaction attempt is in flight
	snapCount uint64 // NOrec: commit count at last validation
	backoff   uint64 // current abort backoff (cycles)

	commits, aborts                        uint64
	readCyc, commitCyc, abortCyc, otherCyc uint64
}

// des is the simulation state.
type des struct {
	p Params
	w Workload
	c Config

	heap    eventHeap
	seq     uint64
	thr     []thread
	rng     uint64
	oversub float64 // threads per core beyond 1.0 stretch compute costs

	// Global engine state.
	commitCount  uint64     // sequence-lock version / 2
	lockFreeAt   uint64     // when the global lock (or commit-server) frees
	writebacks   []interval // recent write-back windows (readers stall)
	commitWaits  []interval // recent commit-wait windows (spinner count)
	invalDoneAt  []uint64   // per invalidation-server completion time
	shardFreeAt  []uint64   // per commit-stream server availability (RInval)
}

// Run executes one simulation.
func Run(p Params, w Workload, c Config) (Result, error) {
	if c.Threads < 1 {
		return Result{}, fmt.Errorf("sim: threads %d < 1", c.Threads)
	}
	if c.Cores < 2 {
		return Result{}, fmt.Errorf("sim: cores %d < 2", c.Cores)
	}
	if c.InvalServers < 1 {
		c.InvalServers = 1
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.InvalServers < c.Shards {
		c.InvalServers = c.Shards // at least one invalidation-server per stream
	}
	d := &des{
		p:           p,
		w:           w,
		c:           c,
		thr:         make([]thread, c.Threads),
		rng:         c.Seed*0x9e3779b97f4a7c15 + 0xdeadbeef,
		invalDoneAt: make([]uint64, c.InvalServers),
		shardFreeAt: make([]uint64, c.Shards),
	}
	// Server engines dedicate cores; application threads share the rest.
	appCores := c.Cores
	switch c.Engine {
	case RInvalV1:
		appCores -= c.Shards
	case RInvalV2, RInvalV3:
		appCores -= c.Shards + c.InvalServers
	}
	if appCores < 1 {
		appCores = 1
	}
	if c.Threads > appCores {
		d.oversub = float64(c.Threads) / float64(appCores)
	} else {
		d.oversub = 1
	}

	for i := range d.thr {
		d.schedule(uint64(i)%97, i) // stagger starts deterministically
	}
	for len(d.heap) > 0 {
		ev := heap.Pop(&d.heap).(event)
		if ev.t >= c.Duration {
			continue // drain without scheduling successors
		}
		d.step(ev.t, ev.th)
	}

	res := Result{Engine: c.Engine, Threads: c.Threads, Cycles: c.Duration}
	for i := range d.thr {
		t := &d.thr[i]
		res.Commits += t.commits
		res.Aborts += t.aborts
		res.ReadCycles += t.readCyc
		res.CommitCycles += t.commitCyc
		res.AbortCycles += t.abortCyc
		res.OtherCycles += t.otherCyc
	}
	return res, nil
}

// MustRun is Run for static configurations; it panics on error.
func MustRun(p Params, w Workload, c Config) Result {
	r, err := Run(p, w, c)
	if err != nil {
		panic(err)
	}
	return r
}

func (d *des) schedule(t uint64, th int) {
	d.seq++
	heap.Push(&d.heap, event{t: t, th: th, seq: d.seq})
}

// rand returns the next deterministic pseudo-random 64-bit value.
func (d *des) rand() uint64 {
	d.rng += 0x9e3779b97f4a7c15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (d *des) bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(d.rand()>>11)/(1<<53) < p
}

// stretch scales compute-bound cycles by the oversubscription factor:
// threads beyond the available cores timeshare.
func (d *des) stretch(cyc uint64) uint64 {
	if d.oversub <= 1 {
		return cyc
	}
	return uint64(float64(cyc) * d.oversub)
}

// step runs one phase of one thread at time now.
func (d *des) step(now uint64, ti int) {
	t := &d.thr[ti]
	switch t.phase {
	case phBegin:
		dur := d.stretch(d.w.NonTxWork)
		t.otherCyc += dur
		t.readOnly = d.bernoulli(d.w.ReadOnlyFrac)
		t.doomedAt = 0
		t.running = true
		t.txStart = now + dur
		t.snapCount = d.commitCount
		t.phase = phReads
		d.schedule(now+dur, ti)

	case phReads:
		end, readCyc, otherCyc := d.readPhase(now, t)
		t.readCyc += readCyc
		t.otherCyc += otherCyc
		t.phase = phCommit
		d.schedule(end, ti)

	case phCommit:
		d.commitPhase(now, ti)
	}
}

// readPhase computes the duration and cost split of a transaction's reads
// plus in-transaction compute. Under the Mutex engine the entire body runs
// inside the critical section, so the read phase is deferred to commitMutex.
func (d *des) readPhase(now uint64, t *thread) (end, readCyc, otherCyc uint64) {
	if d.c.Engine == Mutex {
		return now, 0, 0
	}
	reads := d.w.Reads
	per := d.stretch(d.w.PerReadWork)
	cur := now
	for i := 0; i < reads; i++ {
		otherCyc += per
		cur += per
		rc := d.readCost(cur, t)
		readCyc += rc
		cur += rc
	}
	tc := d.stretch(d.w.TxCompute)
	otherCyc += tc
	cur += tc
	return cur, readCyc, otherCyc
}

// readCost models one transactional load at time `cur`.
func (d *des) readCost(cur uint64, t *thread) uint64 {
	if d.c.Versions > 0 && t.readOnly && d.c.Engine != Mutex && d.c.Engine != TL2 {
		// Multi-version snapshot read: resolve against the captured epoch
		// vector — head load plus the occasional ring scan, no bloom-filter
		// publish, no write-back stall, no server wait.
		return 2 * d.p.CacheHit
	}
	var c uint64
	switch d.c.Engine {
	case Mutex:
		// Reads inside the exclusive section: plain loads.
		return d.p.CacheHit
	case NOrec:
		c = d.p.CacheHit // value load
		if d.commitCountAt(cur) != t.snapCount {
			// Timestamp moved: full read-set revalidation. The validation
			// spins for an even timestamp first (readers stall behind any
			// in-flight write-back), then re-checks the prefix read so far
			// (reads/2 on average) — the quadratic incremental-validation
			// term.
			c += d.writebackStall(cur)
			c += uint64(d.w.Reads/2)*d.p.CacheHit + 2*d.p.CacheMiss
			t.snapCount = d.commitCountAt(cur)
		}
	case TL2:
		// Lock-word sample, value load, lock-word re-sample: all
		// per-location, no global state touched.
		c = 3 * d.p.CacheHit
	case InvalSTM, RInvalV1, RInvalV2, RInvalV3:
		// Wait out any write-back in progress.
		c = d.writebackStall(cur)
		// V2/V3 readers additionally wait for their invalidation-server.
		if d.c.Engine == RInvalV2 || d.c.Engine == RInvalV3 {
			if idone := d.invalDoneAt[0]; idone > cur+c {
				// Approximate "my server caught up" by server 0's horizon;
				// servers advance together since partitions are balanced.
				c += min(idone-(cur+c), d.p.CacheMiss*4)
			}
		}
		c += d.p.CacheHit + d.p.BFAdd + d.p.CacheHit // load + BF publish + status
	}
	return c
}

// commitCountAt returns how many commits completed by time x.
func (d *des) commitCountAt(x uint64) uint64 {
	// Commits are appended with their completion times in d.writebacks;
	// commitCount counts completions whose end <= x is approximated by the
	// global counter (events are processed in time order, so the counter is
	// exact up to phase granularity).
	_ = x
	return d.commitCount
}

// writebackStall returns how long a reader at time x waits for an in-flight
// write-back window.
func (d *des) writebackStall(x uint64) uint64 {
	for i := len(d.writebacks) - 1; i >= 0; i-- {
		wb := d.writebacks[i]
		if x >= wb.start && x < wb.end {
			return wb.end - x
		}
		if wb.end < x {
			break
		}
	}
	return 0
}

// spinnersAt counts threads whose commit-wait window covers time x.
func (d *des) spinnersAt(x uint64) uint64 {
	var n uint64
	for i := len(d.commitWaits) - 1; i >= 0; i-- {
		cw := d.commitWaits[i]
		if x >= cw.start && x < cw.end {
			n++
		}
		if cw.end+1_000_000 < x {
			break
		}
	}
	return n
}

func (d *des) pruneWindows() {
	const keep = 512
	if len(d.writebacks) > keep {
		d.writebacks = append(d.writebacks[:0], d.writebacks[len(d.writebacks)-keep/2:]...)
	}
	if len(d.commitWaits) > keep {
		d.commitWaits = append(d.commitWaits[:0], d.commitWaits[len(d.commitWaits)-keep/2:]...)
	}
}

// commitPhase executes the engine's commit protocol for thread ti at `now`.
func (d *des) commitPhase(now uint64, ti int) {
	t := &d.thr[ti]

	// Doomed transactions abort at the commit point (the read-phase doom
	// check — invalidation status flag, or NOrec's failing revalidation —
	// is folded here at phase granularity). Mutex never conflicts.
	if t.doomedAt != 0 && t.doomedAt <= now && d.c.Engine != Mutex {
		d.abort(now, ti, 0)
		return
	}
	switch d.c.Engine {
	case Mutex:
		d.commitMutex(now, ti)
	case NOrec:
		d.commitNOrec(now, ti)
	case InvalSTM:
		d.commitInval(now, ti)
	case RInvalV1, RInvalV2, RInvalV3:
		d.commitRemote(now, ti)
	case TL2:
		d.commitTL2(now, ti)
	}
	d.pruneWindows()
}

// abort records an abort and schedules the retry after backoff.
func (d *des) abort(now uint64, ti int, extra uint64) {
	t := &d.thr[ti]
	t.aborts++
	t.running = false
	if t.backoff == 0 {
		t.backoff = 256
	} else if t.backoff < 64_000 {
		t.backoff *= 2
	}
	bo := t.backoff/2 + d.rand()%t.backoff
	t.abortCyc += bo + extra
	// Retry: skip the non-tx phase (the paper's critical path re-executes
	// the transaction body only).
	t.doomedAt = 0
	t.readOnly = d.bernoulli(d.w.ReadOnlyFrac)
	t.running = true
	t.txStart = now + extra + bo
	t.snapCount = d.commitCount
	t.phase = phReads
	d.schedule(now+extra+bo, ti)
}

// finishCommit logs a successful commit and its side effects.
func (d *des) finishCommit(ti int, commitEnd uint64, falseBloom bool) {
	t := &d.thr[ti]
	t.commits++
	t.running = false
	t.backoff = 0
	if !t.readOnly {
		// Only writers advance the global timestamp (read-only commits do
		// not serialize) and doom concurrently running transactions.
		d.commitCount++
		pc := d.w.PConflict
		if falseBloom {
			pc += d.w.PFalseBloom
		}
		for j := range d.thr {
			o := &d.thr[j]
			if j == ti || !o.running || o.doomedAt != 0 {
				continue
			}
			if d.c.Versions > 0 && o.readOnly {
				// Snapshot readers never appear in the invalidation scan:
				// abort-free by construction (and free for the committer).
				continue
			}
			if d.bernoulli(pc) {
				o.doomedAt = commitEnd
			}
		}
	}
	t.phase = phBegin
	d.schedule(commitEnd, ti)
}

// commitMutex models the coarse-lock baseline: the whole transaction body —
// reads, in-transaction compute, writes — runs inside the exclusive section,
// so concurrency exists only in the non-transactional gaps (Figure 1(b)).
func (d *des) commitMutex(now uint64, ti int) {
	t := &d.thr[ti]
	start := max(now, d.lockFreeAt)
	handoff := d.p.CAS + d.p.CacheMiss + d.p.HandoffPerSpinner*d.spinnersAt(now)
	per := d.stretch(d.w.PerReadWork)
	readWork := uint64(d.w.Reads) * per
	readMem := uint64(d.w.Reads) * d.p.CacheHit
	body := readWork + readMem + d.stretch(d.w.TxCompute) + uint64(d.w.Writes)*d.p.CacheHit
	end := start + handoff + body
	d.commitWaits = append(d.commitWaits, interval{now, start})
	d.lockFreeAt = end
	t.readCyc += readMem
	t.otherCyc += readWork + d.stretch(d.w.TxCompute)
	t.commitCyc += (start - now) + handoff + uint64(d.w.Writes)*d.p.CacheHit
	d.finishCommit(ti, end, false)
}

// commitNOrec: CAS-acquire the sequence lock (retrying costs a
// revalidation), write back, release. Lock handoff pays the spinner
// broadcast; the holder may suffer OS jitter, stalling everyone.
func (d *des) commitNOrec(now uint64, ti int) {
	t := &d.thr[ti]
	if t.readOnly {
		t.commitCyc += d.p.CacheHit
		d.finishCommit(ti, now+d.p.CacheHit, false)
		return
	}
	// Commit-time validation if anything committed since our last check
	// (the CAS-from-snapshot failed path).
	var val uint64
	if d.commitCount != t.snapCount {
		val = uint64(d.w.Reads) * d.p.CacheHit
	}
	start := max(now+val, d.lockFreeAt)
	handoff := d.p.CAS + d.p.CacheMiss + d.p.HandoffPerSpinner*d.spinnersAt(now)
	wb := uint64(d.w.Writes) * d.p.CacheMiss
	var jitter uint64
	if d.bernoulli(d.p.JitterProb) {
		jitter = d.p.JitterCycles // descheduled while holding the lock
	}
	end := start + handoff + wb + jitter
	d.commitWaits = append(d.commitWaits, interval{now, start})
	d.writebacks = append(d.writebacks, interval{start + handoff, end})
	d.lockFreeAt = end
	t.commitCyc += end - now
	d.finishCommit(ti, end, false)
}

// commitInval: like NOrec's acquisition, but the invalidation scan of every
// in-flight transaction runs inside the critical section (Algorithm 1), so
// lock hold time grows with the thread count.
func (d *des) commitInval(now uint64, ti int) {
	t := &d.thr[ti]
	if t.readOnly {
		t.commitCyc += d.p.CacheHit
		d.finishCommit(ti, now+d.p.CacheHit, false)
		return
	}
	start := max(now, d.lockFreeAt)
	handoff := d.p.CAS + d.p.CacheMiss + d.p.HandoffPerSpinner*d.spinnersAt(now)
	scan := uint64(d.c.Threads) * d.p.BFCheck
	wb := uint64(d.w.Writes) * d.p.CacheMiss
	var jitter uint64
	if d.bernoulli(d.p.JitterProb) {
		jitter = d.p.JitterCycles
	}
	end := start + handoff + scan + wb + jitter
	d.commitWaits = append(d.commitWaits, interval{now, start})
	d.writebacks = append(d.writebacks, interval{start + handoff + scan, end})
	d.lockFreeAt = end
	t.commitCyc += end - now
	d.finishCommit(ti, end, true)
}

// commitTL2 models the fine-grained baseline: one CAS (plus a line
// transfer) per written location, a read-set validation pass, write-back,
// and per-location unlocks — all without any global serialization point, so
// disjoint commits overlap perfectly. The price is CAS/coherence traffic
// proportional to the write set and full-read-set validation at commit.
func (d *des) commitTL2(now uint64, ti int) {
	t := &d.thr[ti]
	if t.readOnly {
		// Read-only TL2 commits are free (reads were validated in place).
		t.commitCyc += d.p.CacheHit
		d.finishCommit(ti, now+d.p.CacheHit, false)
		return
	}
	locks := uint64(d.w.Writes) * (d.p.CAS + d.p.CacheMiss)
	validate := uint64(d.w.Reads) * d.p.CacheHit
	wb := uint64(d.w.Writes) * (d.p.CacheMiss + d.p.CacheHit) // data + unlock
	end := now + locks + validate + wb
	t.commitCyc += end - now
	d.finishCommit(ti, end, false) // advances the clock for writers
}

// commitRemote: the client publishes a cache-aligned request (no CAS, no
// shared spinning) and the commit-server pipeline executes it. V1 runs the
// invalidation scan serially on the server; V2/V3 run it on parallel
// invalidation servers overlapping the write-back; V3 additionally lets the
// server start the next commit before slow invalidators finish.
func (d *des) commitRemote(now uint64, ti int) {
	t := &d.thr[ti]
	if t.readOnly {
		t.commitCyc += d.p.CacheHit
		d.finishCommit(ti, now+d.p.CacheHit, false)
		return
	}
	// Vars hash uniformly across the commit streams, so each single-shard
	// request homes on one of Shards independent server pipelines; a
	// cross-shard request touches a second stream and goes through the
	// two-phase handshake (lock both streams in index order, drain, one
	// combined epoch occupying both pipelines).
	S := len(d.shardFreeAt)
	home := 0
	if S > 1 {
		home = int(d.rand() % uint64(S))
	}
	cross := S > 1 && d.bernoulli(d.w.CrossShardFrac)
	second := home
	if cross {
		second = (home + 1) % S
	}

	arrive := now + d.p.CacheMiss // request line transfer to the server
	start := max(arrive, d.shardFreeAt[home])
	if cross {
		// The leading server waits for every touched pipeline to go idle
		// (stream locks acquire in index order) and pays one CAS per lock.
		start = max(start, d.shardFreeAt[second]) + 2*d.p.CAS
	}

	status := d.p.CacheMiss // server reads the client's status line
	wb := uint64(d.w.Writes) * d.p.CacheMiss
	var commitDone uint64
	switch d.c.Engine {
	case RInvalV1:
		// Every stream's server scans the full slot array (the invalidation
		// scan is over in-flight transactions, not shard-local state); the
		// win is that the S scans run on S dedicated cores in parallel.
		scan := uint64(d.c.Threads) * d.p.ServerBFCheck
		commitDone = start + status + scan + wb
		d.writebacks = append(d.writebacks, interval{start + status + scan, commitDone})
		d.shardFreeAt[home] = commitDone
		if cross {
			d.shardFreeAt[second] = commitDone
		}
		for k := range d.invalDoneAt {
			d.invalDoneAt[k] = commitDone
		}
	case RInvalV2, RInvalV3:
		// InvalServers is the total across streams: each stream owns
		// InvalServers/Shards of them, and each scans its slot partition.
		perShard := d.c.InvalServers / S
		if perShard < 1 {
			perShard = 1
		}
		part := (d.c.Threads + perShard - 1) / perShard
		scan := d.p.CacheMiss + uint64(part)*d.p.ServerBFCheck // fetch signature + scan partition
		if cross {
			// The handshake drains every touched stream's invalidation
			// horizon before the ALIVE check (ring slots must be consumed).
			for _, idone := range d.invalDoneAt {
				if idone > start {
					start = idone
				}
			}
			// Publishing the combined descriptor into the second stream's
			// ring costs one extra line transfer.
			status += d.p.CacheMiss
		}
		commitDone = start + status + wb
		invalDone := start + status + scan
		// One server may be stalled by OS noise (paging, interrupts).
		var lagged uint64
		if d.bernoulli(d.p.InvalLagProb) {
			lagged = invalDone + d.p.InvalLagCycles
		}
		d.writebacks = append(d.writebacks, interval{start + status, commitDone})
		for j := range d.invalDoneAt {
			d.invalDoneAt[j] = invalDone
		}
		if lagged > 0 {
			d.invalDoneAt[0] = lagged
		}
		var freeAt uint64
		if d.c.Engine == RInvalV2 {
			// Next commit waits for both write-back and all invalidators,
			// including a lagged one (Algorithm 3 line 7).
			freeAt = max(commitDone, invalDone, lagged)
		} else {
			// V3: the server runs ahead of slow invalidators as long as no
			// server trails by more than StepsAhead commits (Algorithm 4
			// line 5). A lag longer than the window still blocks, pro-rated
			// by the window size.
			window := uint64(d.c.StepsAhead) * (status + wb)
			freeAt = commitDone
			if lagged > commitDone+window {
				freeAt = lagged - window
			}
		}
		d.shardFreeAt[home] = freeAt
		if cross {
			// A handshake epoch holds the second stream locked until the
			// combined write-back completes.
			d.shardFreeAt[second] = max(d.shardFreeAt[second], commitDone)
		}
	}
	reply := commitDone + d.p.CacheMiss // reply line transfer back
	t.commitCyc += reply - now
	d.finishCommit(ti, reply, true)
}
