package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	heap.Push(&h, event{t: 30, th: 0, seq: 1})
	heap.Push(&h, event{t: 10, th: 1, seq: 2})
	heap.Push(&h, event{t: 10, th: 2, seq: 3})
	heap.Push(&h, event{t: 20, th: 3, seq: 4})
	var order []int
	for h.Len() > 0 {
		order = append(order, heap.Pop(&h).(event).th)
	}
	// Time order, FIFO (seq) tie-break.
	want := []int{1, 2, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestEventHeapFIFOTieBreakProperty(t *testing.T) {
	f := func(times []uint8) bool {
		var h eventHeap
		for i, tt := range times {
			heap.Push(&h, event{t: uint64(tt), th: i, seq: uint64(i)})
		}
		lastT := uint64(0)
		lastSeqAtT := uint64(0)
		for h.Len() > 0 {
			e := heap.Pop(&h).(event)
			if e.t < lastT {
				return false
			}
			if e.t == lastT && e.seq < lastSeqAtT {
				return false
			}
			if e.t != lastT {
				lastSeqAtT = 0
			}
			lastT = e.t
			lastSeqAtT = e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newTestDES() *des {
	return &des{
		p:       DefaultParams(),
		w:       RBTree(50),
		c:       DefaultConfig(NOrec, 4),
		thr:     make([]thread, 4),
		rng:     1,
		oversub: 1,
	}
}

func TestWritebackStall(t *testing.T) {
	d := newTestDES()
	d.writebacks = []interval{{100, 200}, {500, 600}}
	cases := []struct {
		at   uint64
		want uint64
	}{
		{50, 0},    // before any window
		{100, 100}, // at window start
		{150, 50},  // inside first window
		{199, 1},   // last cycle of first window
		{200, 0},   // half-open end
		{300, 0},   // between windows
		{550, 50},  // inside second window
		{700, 0},   // after all windows
	}
	for _, c := range cases {
		if got := d.writebackStall(c.at); got != c.want {
			t.Errorf("stall(%d) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestSpinnersAt(t *testing.T) {
	d := newTestDES()
	d.commitWaits = []interval{{0, 100}, {50, 150}, {120, 130}}
	cases := []struct {
		at   uint64
		want uint64
	}{
		{10, 1},
		{60, 2},
		{125, 2},
		{140, 1},
		{200, 0},
	}
	for _, c := range cases {
		if got := d.spinnersAt(c.at); got != c.want {
			t.Errorf("spinners(%d) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestPruneWindows(t *testing.T) {
	d := newTestDES()
	for i := uint64(0); i < 2000; i++ {
		d.writebacks = append(d.writebacks, interval{i, i + 1})
		d.commitWaits = append(d.commitWaits, interval{i, i + 1})
	}
	d.pruneWindows()
	if len(d.writebacks) > 600 || len(d.commitWaits) > 600 {
		t.Fatalf("prune left %d/%d windows", len(d.writebacks), len(d.commitWaits))
	}
	// Pruning keeps the most recent windows.
	last := d.writebacks[len(d.writebacks)-1]
	if last.start != 1999 {
		t.Fatalf("lost the newest window: %+v", last)
	}
}

func TestStretch(t *testing.T) {
	d := newTestDES()
	d.oversub = 1
	if d.stretch(100) != 100 {
		t.Fatal("no oversubscription must not stretch")
	}
	d.oversub = 2.5
	if got := d.stretch(100); got != 250 {
		t.Fatalf("stretch(100) = %d", got)
	}
}

func TestBernoulliDeterministicAndBounded(t *testing.T) {
	a, b := newTestDES(), newTestDES()
	for i := 0; i < 100; i++ {
		if a.bernoulli(0.5) != b.bernoulli(0.5) {
			t.Fatal("same seed diverged")
		}
	}
	d := newTestDES()
	if d.bernoulli(0) {
		t.Fatal("p=0 fired")
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if d.bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("bernoulli(0.3) rate %v", rate)
	}
}

func TestOversubscriptionKicksIn(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	// 70 threads on 64 cores with 5 server cores reserved: V2 oversubscribes.
	c := DefaultConfig(RInvalV2, 70)
	c.Duration = 2_000_000
	r := MustRun(p, w, c)
	if r.Commits == 0 {
		t.Fatal("no progress under oversubscription")
	}
	// Per-thread throughput must be below the non-oversubscribed run's.
	c2 := DefaultConfig(RInvalV2, 32)
	c2.Duration = 2_000_000
	r2 := MustRun(p, w, c2)
	perThread70 := float64(r.Commits) / 70
	perThread32 := float64(r2.Commits) / 32
	if perThread70 >= perThread32 {
		t.Fatalf("oversubscription did not cost: %f >= %f", perThread70, perThread32)
	}
}

func TestTL2ScalesPastCoarseEngines(t *testing.T) {
	p := DefaultParams()
	w := RBTree(50)
	tl2 := MustRun(p, w, shortCfg(TL2, 48)).Commits
	norec := MustRun(p, w, shortCfg(NOrec, 48)).Commits
	v2 := MustRun(p, w, shortCfg(RInvalV2, 48)).Commits
	if tl2 <= norec || tl2 <= v2 {
		t.Fatalf("fine-grained TL2 (%d) should outscale NOrec (%d) and V2 (%d) at 48 threads", tl2, norec, v2)
	}
	// At low thread counts the engines should be comparable (overhead-bound).
	tl2lo := MustRun(p, w, shortCfg(TL2, 2)).Commits
	norecLo := MustRun(p, w, shortCfg(NOrec, 2)).Commits
	ratio := float64(tl2lo) / float64(norecLo)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("TL2/NOrec at 2 threads = %.2f, want ~1", ratio)
	}
}
