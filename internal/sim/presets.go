package sim

// Workload presets modeling the paper's benchmarks. Parameters follow the
// STAMP characterization (Minh et al., IISWC 2008, Table II) qualitatively:
// transaction lengths, read/write-set sizes, time spent in transactions, and
// contention, scaled to the simulator's cost model.

// RBTree models the red-black tree micro-benchmark of Figures 2 and 7:
// 64K elements => ~16 levels => ~32 monitored reads per operation; updates
// rewrite a handful of nodes near the leaves; a short non-transactional
// delay separates operations. readPct is the lookup percentage (50 or 80 in
// the paper).
func RBTree(readPct int) Workload {
	return Workload{
		Name:         "rbtree",
		Reads:        32,
		Writes:       6,
		ReadOnlyFrac: float64(readPct) / 100,
		// Tree nodes are scattered: every level costs a memory fetch.
		PerReadWork: 120,
		NonTxWork:   600, // the paper's inter-transaction no-op delay
		PConflict:   0.015,
		PFalseBloom: 0.008,
	}
}

// ListTraversal models the sorted linked-list set of the paper's §I/§II
// motivation with the given traversal length: every hop is a monitored read,
// so the read set equals the chain length. Used by the validation-cost
// ablation — NOrec's incremental validation is quadratic in this parameter
// while the invalidation engines stay linear.
func ListTraversal(reads int) Workload {
	return Workload{
		Name:         "list",
		Reads:        reads,
		Writes:       2,
		ReadOnlyFrac: 0.5,
		PerReadWork:  30, // pointer-chasing node fetch
		NonTxWork:    500,
		PConflict:    0.01,
		PFalseBloom:  0.01,
	}
}

// STAMP returns the modeled workload for a STAMP application name, matching
// the applications of Figures 3 and 8. Unknown names return ok=false.
func STAMP(name string) (Workload, bool) {
	switch name {
	case "kmeans":
		// Short transactions, high contention on K cluster accumulators,
		// significant non-transactional assignment math.
		return Workload{
			Name: name, Reads: 4, Writes: 4, ReadOnlyFrac: 0,
			PerReadWork: 10, NonTxWork: 2200,
			PConflict: 0.10, PFalseBloom: 0.01,
		}, true
	case "ssca2":
		// Very short transactions, tiny non-transactional work, low
		// contention: per-commit overhead dominates.
		return Workload{
			Name: name, Reads: 3, Writes: 3, ReadOnlyFrac: 0,
			PerReadWork: 6, NonTxWork: 500,
			PConflict: 0.004, PFalseBloom: 0.004,
		}, true
	case "labyrinth":
		// Huge read set (grid snapshot) and a long in-transaction BFS;
		// almost all time is computation, so engines converge.
		return Workload{
			Name: name, Reads: 500, Writes: 40, ReadOnlyFrac: 0,
			PerReadWork: 4, TxCompute: 600_000, NonTxWork: 50_000,
			PConflict: 0.02, PFalseBloom: 0.005,
		}, true
	case "intruder":
		// Medium transactions over a hot queue and session map.
		return Workload{
			Name: name, Reads: 12, Writes: 5, ReadOnlyFrac: 0.05,
			PerReadWork: 60, NonTxWork: 1200,
			PConflict: 0.05, PFalseBloom: 0.01,
		}, true
	case "genome":
		// Read-dominated dedup + matching: long lookup transactions with
		// substantial hashing/string work, few and small writers; doomed
		// readers re-run long read phases, penalizing eager invalidation.
		// STAMP reports genome spending >90% of its time inside
		// transactions, so the per-segment hashing/matching work is modeled
		// per read: an aborted reader forfeits the whole long read phase.
		return Workload{
			Name: name, Reads: 24, Writes: 2, ReadOnlyFrac: 0.70,
			PerReadWork: 500, NonTxWork: 1_200,
			PConflict: 0.012, PFalseBloom: 0.02,
		}, true
	case "vacation":
		// Read-mostly database transactions traversing red-black tree
		// relations (memory-fetch heavy), with client think time between
		// tasks.
		// Like genome, vacation lives almost entirely inside transactions;
		// reservation queries read far more than they write.
		return Workload{
			Name: name, Reads: 40, Writes: 4, ReadOnlyFrac: 0.65,
			PerReadWork: 300, NonTxWork: 1_500,
			PConflict: 0.01, PFalseBloom: 0.018,
		}, true
	case "bayes":
		// Like labyrinth: dominated by (non-transactional) scoring scans.
		return Workload{
			Name: name, Reads: 8, Writes: 2, ReadOnlyFrac: 0.10,
			PerReadWork: 8, TxCompute: 2_000, NonTxWork: 700_000,
			PConflict: 0.02, PFalseBloom: 0.005,
		}, true
	}
	return Workload{}, false
}

// STAMPNames lists the modeled applications in the paper's Figure 8 order
// (bayes is breakdown-only, as in the paper).
var STAMPNames = []string{"kmeans", "ssca2", "labyrinth", "intruder", "genome", "vacation", "bayes"}
