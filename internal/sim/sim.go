// Package sim is a deterministic discrete-event simulator of the paper's
// experimental platform: a 64-core cache-coherent machine running one of the
// six STM engines. It exists because the live Go runtime on this project's
// CI hardware (few cores, goroutine scheduling, GC) cannot reproduce the
// cache-contention effects the paper measures — spinning on a shared
// sequence lock costing O(#spinners) coherence transfers per handoff, versus
// RInval's local spinning on cache-aligned slots.
//
// The simulator models, in CPU cycles:
//
//   - a cost hierarchy (cache hit, remote cache miss, CAS, bloom ops);
//   - the global sequence lock with contention-dependent handoff cost
//     (each acquisition broadcasts an invalidation to every spinner);
//   - per-engine critical paths: NOrec's incremental validation (full
//     read-set re-check whenever the timestamp moved), InvalSTM's
//     invalidation scan inside the commit critical section, and RInval's
//     commit-server pipeline with parallel invalidation servers;
//   - conflicts: each commit dooms each concurrently running transaction
//     with a workload-specific probability (plus a bloom false-positive
//     surcharge for the invalidation engines);
//   - optional OS jitter on lock holders — the paper's argument that a
//     descheduled commit executor blocks the whole system while a pinned
//     commit-server does not.
//
// Results are exact (same seed, same output) and reproduce the *shapes* of
// the paper's Figures 2, 3, 7 and 8; absolute numbers are synthetic.
package sim

import "fmt"

// Engine mirrors the live engines (core.Algo) for the modeled machine.
type Engine int

// Modeled engines.
const (
	Mutex Engine = iota
	NOrec
	InvalSTM
	RInvalV1
	RInvalV2
	RInvalV3
	// TL2 models the fine-grained baseline (per-location versioned locks,
	// global clock): commits CAS one lock per written location and validate
	// the read set, with no global serialization point. Used by the
	// coarse-vs-fine ablation.
	TL2
)

// String returns the plot name.
func (e Engine) String() string {
	switch e {
	case Mutex:
		return "mutex"
	case NOrec:
		return "norec"
	case InvalSTM:
		return "invalstm"
	case RInvalV1:
		return "rinval-v1"
	case RInvalV2:
		return "rinval-v2"
	case RInvalV3:
		return "rinval-v3"
	case TL2:
		return "tl2"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Engines lists the modeled engines in presentation order.
var Engines = []Engine{Mutex, NOrec, InvalSTM, RInvalV1, RInvalV2, RInvalV3, TL2}

// ParseEngine converts a name back to an Engine.
func ParseEngine(s string) (Engine, error) {
	for _, e := range Engines {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown engine %q", s)
}

// Params is the hardware cost model, in cycles. DefaultParams approximates
// the paper's 2.2 GHz 64-core AMD Opteron.
type Params struct {
	CacheHit  uint64 // L1 hit / core-local access
	CacheMiss uint64 // remote cache line transfer
	CAS       uint64 // uncontended compare-and-swap
	BFCheck   uint64 // bloom filter intersection by an application thread (cold lines)
	BFAdd     uint64 // bloom filter bit set
	// ServerBFCheck is the per-slot intersection cost on a dedicated
	// server: the requests array stays resident in the server's cache
	// (the paper's cache-aligned communication argument), so the scan is
	// cheaper than InvalSTM's scan from a different thread each commit.
	ServerBFCheck uint64
	// HandoffPerSpinner is the extra coherence cost each spinning thread
	// adds to every shared-lock handoff (invalidation broadcast + refill).
	HandoffPerSpinner uint64
	// JitterProb is the per-commit probability that the thread executing a
	// commit routine on an application core is descheduled mid-commit;
	// JitterCycles is the stall. Dedicated server cores are exempt (the
	// paper's §IV-A argument).
	JitterProb   float64
	JitterCycles uint64
	// InvalLagProb/InvalLagCycles inject a stall into one invalidation
	// server's scan (OS noise, paging — the paper's §IV-C motivation for
	// V3's step-ahead commit). Under lag, V2's commit-server blocks waiting
	// for the slow server; V3 keeps committing requests whose own server is
	// current.
	InvalLagProb   float64
	InvalLagCycles uint64
	// GHz converts cycles to seconds for throughput reporting.
	GHz float64
}

// DefaultParams models the paper's testbed.
func DefaultParams() Params {
	return Params{
		CacheHit:          2,
		CacheMiss:         120,
		CAS:               60,
		BFCheck:           40,
		BFAdd:             8,
		ServerBFCheck:     30,
		HandoffPerSpinner: 50,
		JitterProb:        0.0005,
		JitterCycles:      200_000,
		GHz:               2.2,
	}
}

// Workload describes a transaction population.
type Workload struct {
	Name string
	// Reads/Writes per update transaction.
	Reads, Writes int
	// ReadOnlyFrac is the fraction of transactions that write nothing.
	ReadOnlyFrac float64
	// PerReadWork is non-shared computation per read (cycles).
	PerReadWork uint64
	// TxCompute is extra computation inside the transaction after the reads
	// (labyrinth's BFS, bayes' scoring happens outside; see NonTxWork).
	TxCompute uint64
	// NonTxWork is computation between transactions (cycles).
	NonTxWork uint64
	// PConflict is the probability that one commit's write set intersects
	// one concurrently running transaction's read set.
	PConflict float64
	// PFalseBloom is the additional false-conflict probability the
	// invalidation engines pay for signature imprecision.
	PFalseBloom float64
	// CrossShardFrac is the fraction of update transactions whose footprint
	// spans two commit streams (Config.Shards > 1 only): those commits go
	// through the cross-shard handshake instead of a single stream's
	// pipeline. Irrelevant at Shards == 1.
	CrossShardFrac float64
}

// Config selects engine, scale, and duration.
type Config struct {
	Engine       Engine
	Threads      int
	InvalServers int // RInvalV2/V3: total across all shards (split evenly)
	StepsAhead   int // RInvalV3
	// Shards is the number of independent commit streams (RInval engines
	// only; mirrors core.Config.Shards). Each stream has its own dedicated
	// commit-server pipeline; Vars hash uniformly across streams, so with
	// disjoint keys the serialization bottleneck divides by Shards. Commits
	// whose footprint spans streams pay the two-phase handshake: they wait
	// for every touched pipeline and occupy all of them for the epoch.
	// 0 means 1 (the paper's single global stream).
	Shards int
	// Versions mirrors core.Config.Versions: with a positive value read-only
	// transactions run on the multi-version snapshot path — they are never
	// doomed by a committing writer and their reads skip the invalidation
	// engines' bloom-filter maintenance and write-back stalls (a version
	// resolve costs ~two core-local accesses instead). 0 models the
	// paper-exact baseline where readers pay the invalidation tax.
	Versions int
	Cores    int    // physical cores; threads beyond cores timeshare
	Duration uint64 // simulated cycles
	Seed     uint64
}

// DefaultConfig returns the paper-scale machine: 64 cores, 4 invalidation
// servers, 50M cycles (~23ms at 2.2GHz).
func DefaultConfig(e Engine, threads int) Config {
	return Config{
		Engine:       e,
		Threads:      threads,
		InvalServers: 4,
		StepsAhead:   2,
		Shards:       1,
		Cores:        64,
		Duration:     50_000_000,
		Seed:         1,
	}
}

// Result is one simulation's outcome.
type Result struct {
	Engine  Engine
	Threads int
	Commits uint64
	Aborts  uint64
	Cycles  uint64

	// Phase totals across all threads, in cycles (the paper's Figure 2/3
	// breakdown: read incl. validation, commit incl. acquisition/server
	// round trip, abort incl. backoff, other = everything else).
	ReadCycles   uint64
	CommitCycles uint64
	AbortCycles  uint64
	OtherCycles  uint64
}

// ThroughputKTxPerSec converts to the paper's Figure 7 unit.
func (r Result) ThroughputKTxPerSec(p Params) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / (p.GHz * 1e9)
	return float64(r.Commits) / seconds / 1e3
}

// AbortRate returns aborts/(commits+aborts).
func (r Result) AbortRate() float64 {
	t := r.Commits + r.Aborts
	if t == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(t)
}

// Breakdown returns the phase fractions (read, commit, abort, other) of
// total busy time.
func (r Result) Breakdown() (read, commit, abort, other float64) {
	total := float64(r.ReadCycles + r.CommitCycles + r.AbortCycles + r.OtherCycles)
	if total == 0 {
		return 0, 0, 0, 0
	}
	return float64(r.ReadCycles) / total, float64(r.CommitCycles) / total,
		float64(r.AbortCycles) / total, float64(r.OtherCycles) / total
}
