// Package spin provides spin-wait helpers that stay live on any GOMAXPROCS.
//
// The paper's algorithms spin: clients spin on their request slot waiting for
// the commit-server's reply, servers spin scanning for pending requests, and
// readers spin waiting for the global timestamp to turn even. On the paper's
// testbed every spinner owned a core; under the Go runtime — and in this
// reproduction's single-core CI environment — a naive busy loop would starve
// the very goroutine it is waiting for. Waiter implements an adaptive policy:
// a short busy phase (cheap when the condition flips quickly on a multicore
// box), then cooperative yields, then progressively longer sleeps so that an
// idle server consumes negligible CPU.
package spin

import (
	"runtime"
	"time"
)

// Tunables for the adaptive wait policy. They are variables (not constants)
// so stress tests can tighten them.
var (
	// BusyIters is the number of pure busy-loop iterations before yielding.
	BusyIters = 64
	// YieldIters is the number of runtime.Gosched calls before sleeping.
	YieldIters = 128
	// MaxSleep caps the exponential sleep backoff.
	MaxSleep = 100 * time.Microsecond
)

// Waiter tracks how long a caller has been spinning and escalates from busy
// waiting to yielding to sleeping. The zero value is ready to use.
type Waiter struct {
	spins int
	sleep time.Duration
}

// Wait performs one step of the adaptive wait. Call it in a loop that
// re-checks the awaited condition between calls.
func (w *Waiter) Wait() {
	switch {
	case w.spins < BusyIters:
		w.spins++
		// Busy spin: on a multicore machine the condition usually flips
		// within a few cache-coherence round trips.
	case w.spins < BusyIters+YieldIters:
		w.spins++
		runtime.Gosched()
	default:
		if w.sleep == 0 {
			w.sleep = time.Microsecond
		} else if w.sleep < MaxSleep {
			w.sleep *= 2
			if w.sleep > MaxSleep {
				w.sleep = MaxSleep
			}
		}
		time.Sleep(w.sleep)
	}
}

// Reset restores the waiter to its initial (busy) phase. Call it after the
// awaited condition was observed, so the next wait starts cheap again.
func (w *Waiter) Reset() {
	w.spins = 0
	w.sleep = 0
}

// Until spins until cond returns true, using an adaptive waiter.
func Until(cond func() bool) {
	var w Waiter
	for !cond() {
		w.Wait()
	}
}

// Backoff implements randomized exponential backoff for abort/retry paths.
// Aborted transactions back off before retrying so that a storm of doomed
// re-executions does not keep re-invalidating each other (the paper's simple
// contention manager). The zero value is invalid; use NewBackoff.
type Backoff struct {
	min, max time.Duration
	cur      time.Duration
	rng      uint64
}

// NewBackoff returns a Backoff sleeping between min and max, seeded
// deterministically from seed so test runs are reproducible.
func NewBackoff(min, max time.Duration, seed uint64) *Backoff {
	if min <= 0 {
		min = time.Microsecond
	}
	if max < min {
		max = min
	}
	return &Backoff{min: min, max: max, cur: min, rng: seed | 1}
}

// nextRand is SplitMix64: tiny, fast, and good enough for jitter.
func (b *Backoff) nextRand() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Pause sleeps for the current backoff interval with +-50% jitter and then
// doubles the interval (capped at max).
func (b *Backoff) Pause() {
	d := b.cur
	// jitter in [d/2, 3d/2)
	j := time.Duration(b.nextRand() % uint64(d))
	d = d/2 + j
	time.Sleep(d)
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
}

// Reset restores the backoff interval to its minimum. Call after a success.
func (b *Backoff) Reset() { b.cur = b.min }
