package spin

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestUntilImmediate(t *testing.T) {
	calls := 0
	Until(func() bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("cond called %d times, want 1", calls)
	}
}

func TestUntilEventually(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(2 * time.Millisecond)
		flag.Store(true)
	}()
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Until never returned")
	}
}

// TestUntilSingleOS verifies liveness when the waiter and the setter must
// share a single OS thread — the scenario that breaks naive busy loops.
func TestUntilSingleOS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	var flag atomic.Bool
	var hops atomic.Int64
	go func() {
		// The setter needs many scheduling quanta before flipping the flag.
		for i := 0; i < 100; i++ {
			hops.Add(1)
			runtime.Gosched()
		}
		flag.Store(true)
	}()
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("starved: setter made %d hops", hops.Load())
	}
}

func TestWaiterEscalates(t *testing.T) {
	w := &Waiter{}
	for i := 0; i < BusyIters+YieldIters; i++ {
		w.Wait()
	}
	if w.sleep != 0 {
		t.Fatal("slept before exhausting busy+yield phases")
	}
	w.Wait()
	if w.sleep == 0 {
		t.Fatal("did not escalate to sleeping")
	}
	first := w.sleep
	w.Wait()
	if w.sleep <= first && w.sleep < MaxSleep {
		t.Fatalf("sleep did not grow: %v -> %v", first, w.sleep)
	}
	w.Reset()
	if w.spins != 0 || w.sleep != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestWaiterSleepCapped(t *testing.T) {
	w := &Waiter{spins: BusyIters + YieldIters}
	for i := 0; i < 40; i++ {
		if w.sleep == 0 {
			w.sleep = time.Microsecond
		} else if w.sleep < MaxSleep {
			w.sleep *= 2
			if w.sleep > MaxSleep {
				w.sleep = MaxSleep
			}
		}
	}
	if w.sleep > MaxSleep {
		t.Fatalf("sleep %v exceeds cap %v", w.sleep, MaxSleep)
	}
}

func TestBackoffGrowsAndResets(t *testing.T) {
	b := NewBackoff(time.Microsecond, 8*time.Microsecond, 42)
	if b.cur != time.Microsecond {
		t.Fatalf("initial %v", b.cur)
	}
	for i := 0; i < 10; i++ {
		b.Pause()
	}
	if b.cur != 8*time.Microsecond {
		t.Fatalf("cap not honored: %v", b.cur)
	}
	b.Reset()
	if b.cur != time.Microsecond {
		t.Fatalf("reset to %v", b.cur)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, -1, 0)
	if b.min <= 0 || b.max < b.min {
		t.Fatalf("bad defaults min=%v max=%v", b.min, b.max)
	}
	if b.rng == 0 {
		t.Fatal("seed 0 must still produce nonzero rng state")
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	a := NewBackoff(time.Microsecond, time.Millisecond, 7)
	b := NewBackoff(time.Microsecond, time.Millisecond, 7)
	for i := 0; i < 16; i++ {
		if a.nextRand() != b.nextRand() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewBackoff(time.Microsecond, time.Millisecond, 8)
	same := true
	for i := 0; i < 16; i++ {
		if a.nextRand() != c.nextRand() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical stream")
	}
}
